#!/usr/bin/env python
"""One-command repository health check: tests + goldens + benchmarks + docs.

Runs, in order (see :func:`stage_plan`):

1. ``lint (ruff)`` -- ``ruff check`` over the tree with the pinned config in
   pyproject.toml.  Skipped (not failed) when ruff is not installed locally;
   the workflows install the pinned version so the stage always runs in CI.
2. ``tier-1 tests`` -- the full pytest suite (``PYTHONPATH=src python -m
   pytest -x -q``); ``--junitxml PATH`` passes a JUnit report path through to
   pytest, ``--fast`` skips the stage entirely.
3. ``tier-1 tests (pure-python kernel)`` -- the same suite pinned to
   ``REPRO_KERNEL=python``: the tree must work without the vectorized
   NumPy/SciPy tier (an optional extra).  Also skipped under ``--fast``.
4. ``golden counters`` -- ``scripts/bench_compare.py --skip-benchmarks``
   against the committed ``BENCH_seed.json``: the fixed distributed build and
   BFS-forest protocol must stay bit-identical.  ``--snapshot PATH`` keeps
   the produced snapshot (CI uploads it as an artifact).
5. ``phase micro-benchmarks (quick mode)`` -- the superclustering /
   interconnection phase drivers run once, assertions only.
6. ``capacity ladder (quick mode)`` -- ``repro capacity`` on a tiny budget
   and window: exercises the measured-capacity search and its CLI end to end
   on every push without paying real measurement time.
7. ``capacity ladder (quick mode, numpy kernel)`` -- the same quick ladder
   under ``repro --kernel numpy``: drives the vectorized kernels through the
   whole capacity CLI.
8. ``fault injection (quick mode)`` -- ``repro chaos`` over the
   chaos-primitives matrix with a wall-clock task timeout: every injected
   fault schedule must terminate in a typed outcome (the scenario checks
   enforce it) and the failure manifest must validate against its schema.
9. ``dynamic churn (quick mode)`` -- ``repro dynamic`` over the
   dynamic-churn matrix: every incremental-capable algorithm maintains its
   spanner through seeded churn traces and the scenario checks re-verify the
   declared guarantee after every single step.
10. ``store-corruption smoke`` -- ``repro chaos --store-smoke``: corrupt one
    cached task entry, then prove the store invalidates it, recomputes exactly
    that task on resume, and reproduces a byte-identical record.
11. ``serve smoke (quick mode)`` -- ``repro serve --check`` on a small seeded
    mixed load: the request broker must show cache hits and coalesced
    single-flight builds and lose no request (zero dropped / failed /
    rejected responses).
12. ``registry completeness`` -- ``scripts/registry_check.py``: every
    registered algorithm must have a measured CAPACITY.json entry, a row in
    EXPERIMENTS.md's Algorithm registry table, and membership in at least
    one scenario matrix.  Registration drift fails the build.
13. ``experiments-md drift`` -- the committed EXPERIMENTS.md must match the
    current algorithm/scenario registries.

Stages run sequentially and the first failure stops the run (later stages
are reported as skipped).  Exit status is non-zero if any stage fails.

Under GitHub Actions (``GITHUB_ACTIONS=true``) every stage is wrapped in a
``::group::`` block, failures emit ``::error`` annotations, and a per-stage
outcome table is appended to ``$GITHUB_STEP_SUMMARY``.  Locally::

    python scripts/ci_check.py            # all stages
    python scripts/ci_check.py --fast     # skip the pytest stage
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Budget/window of the quick-mode capacity stage: small enough that every
#: probe build finishes in well under a second.
QUICK_CAPACITY_BUDGET = "0.2"
QUICK_CAPACITY_MAX_N = "128"
QUICK_CAPACITY_START_N = "32"

#: Wall-clock limit of the quick-mode chaos stage's tasks: generous (the
#: whole matrix runs in well under a second) but finite, so a wedged fault
#: schedule quarantines instead of hanging CI.
QUICK_CHAOS_TASK_TIMEOUT = "120"

#: Wall-clock limit of the quick-mode dynamic stage's tasks: each task
#: replays one small churn trace with exhaustive per-step verification, so
#: the whole matrix finishes in seconds; the limit only catches hangs.
QUICK_DYNAMIC_TASK_TIMEOUT = "120"

#: Request count of the quick-mode serve smoke: enough traffic over the
#: 12-key Zipf catalogue that hits and coalesced builds are guaranteed, small
#: enough to finish in a couple of seconds.
QUICK_SERVE_REQUESTS = "200"


@dataclass
class StageResult:
    """Outcome of one stage: name, skip reason or exit status, wall-clock."""

    name: str
    status: str  # "ok" | "failed" | "skipped"
    returncode: Optional[int] = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status != "failed"


def _env() -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(SRC) + (os.pathsep + existing if existing else "")
    return env


def in_github_actions() -> bool:
    """Whether we are running under GitHub Actions (enables annotations)."""
    return os.environ.get("GITHUB_ACTIONS") == "true"


def stage_plan(args: argparse.Namespace, snapshot_path: str) -> List[Tuple[str, Optional[List[str]]]]:
    """The ordered stage list as ``(name, command-or-None)`` pairs.

    ``None`` commands are reported as skipped (e.g. the pytest stage under
    ``--fast``).  Kept as one pure function of the arguments so the stage
    ordering and flag handling are unit-testable without running anything.
    """
    pytest_cmd: Optional[List[str]] = None
    pure_pytest_cmd: Optional[List[str]] = None
    if not args.fast:
        pytest_cmd = [sys.executable, "-m", "pytest", "-x", "-q"]
        if args.junitxml:
            pytest_cmd.append(f"--junitxml={args.junitxml}")
        # The same suite pinned to the pure-Python kernel: proves the tree
        # still works on a bare interpreter (numpy/scipy are an optional
        # extra) and that no code path silently depends on the vectorized
        # tier.  Leading KEY=VALUE tokens are env assignments (env(1)
        # semantics, applied by run_stage).
        pure_pytest_cmd = [
            "REPRO_KERNEL=python",
            sys.executable,
            "-m",
            "pytest",
            "-x",
            "-q",
        ]
    # Lint runs wherever ruff is installed (the workflows pin and install
    # it); locally it degrades to a skip instead of failing on a missing
    # optional tool.
    lint_cmd: Optional[List[str]] = None
    if shutil.which("ruff"):
        lint_cmd = ["ruff", "check", str(REPO_ROOT)]
    return [
        ("lint (ruff)", lint_cmd),
        ("tier-1 tests", pytest_cmd),
        ("tier-1 tests (pure-python kernel)", pure_pytest_cmd),
        (
            "golden counters",
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "bench_compare.py"),
                "--skip-benchmarks",
                "--output",
                snapshot_path,
                "--baseline",
                str(REPO_ROOT / "BENCH_seed.json"),
            ],
        ),
        (
            "phase micro-benchmarks (quick mode)",
            [
                sys.executable,
                "-m",
                "pytest",
                "-q",
                str(REPO_ROOT / "benchmarks" / "bench_phases.py"),
                "--benchmark-disable",
            ],
        ),
        (
            "capacity ladder (quick mode)",
            [
                sys.executable,
                "-m",
                "repro",
                "capacity",
                "--budget",
                QUICK_CAPACITY_BUDGET,
                "--start-n",
                QUICK_CAPACITY_START_N,
                "--max-n",
                QUICK_CAPACITY_MAX_N,
            ],
        ),
        (
            # Same quick ladder forced onto the vectorized backend: exercises
            # the --kernel plumbing and the numpy kernels through the whole
            # capacity CLI on every push.
            "capacity ladder (quick mode, numpy kernel)",
            [
                sys.executable,
                "-m",
                "repro",
                "--kernel",
                "numpy",
                "capacity",
                "--budget",
                QUICK_CAPACITY_BUDGET,
                "--start-n",
                QUICK_CAPACITY_START_N,
                "--max-n",
                QUICK_CAPACITY_MAX_N,
            ],
        ),
        (
            "fault injection (quick mode)",
            [
                sys.executable,
                "-m",
                "repro",
                "chaos",
                "--scenario",
                "chaos-primitives",
                "--task-timeout",
                QUICK_CHAOS_TASK_TIMEOUT,
            ],
        ),
        (
            "dynamic churn (quick mode)",
            [
                sys.executable,
                "-m",
                "repro",
                "dynamic",
                "--scenario",
                "dynamic-churn",
                "--task-timeout",
                QUICK_DYNAMIC_TASK_TIMEOUT,
            ],
        ),
        (
            "store-corruption smoke",
            [
                sys.executable,
                "-m",
                "repro",
                "chaos",
                "--store-smoke",
            ],
        ),
        (
            "serve smoke (quick mode)",
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--requests",
                QUICK_SERVE_REQUESTS,
                "--concurrency",
                "8",
                "--workers",
                "2",
                "--check",
            ],
        ),
        (
            "registry completeness",
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "registry_check.py"),
            ],
        ),
        (
            "experiments-md drift",
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "generate_experiments_md.py"),
                "--check",
            ],
        ),
    ]


def run_stage(name: str, cmd: List[str]) -> StageResult:
    """Run one stage command, grouped and annotated under GitHub Actions.

    Leading ``KEY=VALUE`` tokens in ``cmd`` are environment assignments for
    the stage (env(1) semantics), so the stage plan stays a plain list of
    ``(name, argv)`` pairs.
    """
    github = in_github_actions()
    if github:
        print(f"::group::{name}", flush=True)
    print(f"==> {name}: {' '.join(cmd)}", flush=True)
    env = _env()
    command = list(cmd)
    while command and re.match(r"^[A-Za-z_][A-Za-z0-9_]*=", command[0]):
        key, _, value = command.pop(0).partition("=")
        env[key] = value
    start = time.perf_counter()
    proc = subprocess.run(command, cwd=REPO_ROOT, env=env)
    seconds = time.perf_counter() - start
    ok = proc.returncode == 0
    print(f"==> {name}: {'OK' if ok else f'FAILED (exit {proc.returncode})'}", flush=True)
    if github:
        print("::endgroup::", flush=True)
        if not ok:
            print(
                f"::error title=ci_check stage failed::stage {name!r} "
                f"exited with status {proc.returncode}",
                flush=True,
            )
    return StageResult(
        name=name,
        status="ok" if ok else "failed",
        returncode=proc.returncode,
        seconds=seconds,
    )


def render_step_summary(results: List[StageResult]) -> str:
    """The Markdown outcome table appended to ``$GITHUB_STEP_SUMMARY``."""
    lines = [
        "### ci_check stage outcomes",
        "",
        "| stage | outcome | exit | seconds |",
        "| --- | --- | --- | --- |",
    ]
    icons = {"ok": "✅ ok", "failed": "❌ failed", "skipped": "⏭️ skipped"}
    for result in results:
        exit_code = "-" if result.returncode is None else str(result.returncode)
        lines.append(
            f"| {result.name} | {icons[result.status]} | {exit_code} "
            f"| {result.seconds:.1f} |"
        )
    return "\n".join(lines) + "\n"


def write_step_summary(results: List[StageResult]) -> None:
    """Append the outcome table to the workflow step summary, if present."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    try:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(render_step_summary(results))
    except OSError:
        pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="skip the pytest stage; only run the cheap check stages",
    )
    parser.add_argument(
        "--junitxml",
        type=str,
        default=None,
        help="JUnit XML report path passed through to the pytest stage",
    )
    parser.add_argument(
        "--snapshot",
        type=str,
        default=None,
        help="keep the golden-counter snapshot at this path (for CI artifacts)",
    )
    args = parser.parse_args(argv)

    if args.snapshot:
        snapshot = args.snapshot
        cleanup_snapshot = False
    else:
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
            snapshot = handle.name
        cleanup_snapshot = True

    results: List[StageResult] = []
    failed = False
    try:
        for name, cmd in stage_plan(args, snapshot):
            if cmd is None:
                results.append(StageResult(name=name, status="skipped"))
                print(f"==> {name}: skipped", flush=True)
                continue
            if failed:
                results.append(StageResult(name=name, status="skipped"))
                print(f"==> {name}: skipped (earlier stage failed)", flush=True)
                continue
            result = run_stage(name, cmd)
            results.append(result)
            failed = failed or not result.ok
    finally:
        if cleanup_snapshot:
            try:
                os.unlink(snapshot)
            except OSError:
                pass
        write_step_summary(results)

    print("==> all checks passed" if not failed else "==> CHECKS FAILED", flush=True)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
