#!/usr/bin/env python
"""Registry completeness gate: every registration gets its full entitlement.

The algorithm registry's promise is that registering a spec is *all* it takes
for an algorithm to be measured, documented and guarantee-checked.  This
script makes CI prove the entitlement mechanically.  For every registered
algorithm it asserts:

1. **capacity** -- a measured entry in the committed ``CAPACITY.json`` ladder
   (``repro capacity --update-defaults`` writes it), so ``max_practical_vertices``
   hints are honest measurements, not placeholders;
2. **docs** -- a row in EXPERIMENTS.md's "Algorithm registry" table
   (``scripts/generate_experiments_md.py`` writes it);
3. **scenario membership** -- at least one registered experiment scenario
   expands a task for the algorithm (the registry-driven matrices of
   ``table2``, the size sweeps or the dynamic tier), so every registration is
   actually exercised by the experiment pipeline.

Any drift -- a registration missing a capacity measurement, a stale docs
table, an algorithm no scenario runs -- fails the build with one line per
problem.  Run locally::

    python scripts/registry_check.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Set

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import algorithms  # noqa: E402
from repro.experiments import all_specs  # noqa: E402

EXPERIMENTS_MD = REPO_ROOT / "EXPERIMENTS.md"
CAPACITY_JSON = REPO_ROOT / "src" / "repro" / "algorithms" / "CAPACITY.json"


def scenario_membership() -> Dict[str, Set[str]]:
    """``algorithm -> scenarios`` derived by expanding every scenario's tasks.

    Scenario matrices put the algorithm name in the task parameter dict under
    ``"algorithm"`` (the convention of every registry-driven matrix), so task
    expansion -- not a parallel bookkeeping table -- is the source of truth.
    """
    members: Dict[str, Set[str]] = {}
    for spec in all_specs():
        for params in spec.task_params():
            name = params.get("algorithm")
            if isinstance(name, str):
                members.setdefault(name, set()).add(spec.name)
    return members


def capacity_entries(path: Path) -> Set[str]:
    """Algorithm names with a positive measured capacity in the ladder."""
    try:
        ladder = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return set()
    measured = set()
    entries = ladder.get("entries")
    if not isinstance(entries, dict):
        return set()
    for name, entry in entries.items():
        try:
            if int(entry["max_practical_vertices"]) > 0:
                measured.add(name)
        except (KeyError, TypeError, ValueError):
            continue
    return measured


def documented_algorithms(path: Path) -> Set[str]:
    """Algorithm names with a row in EXPERIMENTS.md's registry table."""
    try:
        content = path.read_text(encoding="utf-8")
    except OSError:
        return set()
    marker = "## Algorithm registry"
    start = content.find(marker)
    if start < 0:
        return set()
    # The table ends at the next section heading.
    end = content.find("\n## ", start + len(marker))
    section = content[start : end if end > 0 else len(content)]
    documented = set()
    for line in section.splitlines():
        if line.startswith("| ") and not line.startswith("| ---"):
            first_cell = line.split("|")[1].strip()
            if first_cell and first_cell != "algorithm":
                documented.add(first_cell)
    return documented


def find_problems(
    experiments_md: Path = EXPERIMENTS_MD, capacity_json: Path = CAPACITY_JSON
) -> List[str]:
    """One human-readable line per completeness violation (empty = healthy)."""
    problems: List[str] = []
    names = algorithms.algorithm_names()
    measured = capacity_entries(capacity_json)
    documented = documented_algorithms(experiments_md)
    members = scenario_membership()

    for name in names:
        if name not in measured:
            problems.append(
                f"{name}: no measured entry in {capacity_json.name} "
                "(run `repro capacity --update-defaults`)"
            )
        if name not in documented:
            problems.append(
                f"{name}: no row in EXPERIMENTS.md's Algorithm registry table "
                "(run scripts/generate_experiments_md.py)"
            )
        if name not in members:
            problems.append(
                f"{name}: no registered scenario expands a task for it "
                "(every registration must be exercised by at least one matrix)"
            )

    # Drift in the other direction: docs rows for unregistered algorithms are
    # stale copy that would mislead readers.
    for name in sorted(documented - set(names)):
        problems.append(
            f"{name}: documented in EXPERIMENTS.md but not registered "
            "(run scripts/generate_experiments_md.py)"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--experiments-md",
        type=Path,
        default=EXPERIMENTS_MD,
        help="EXPERIMENTS.md to check (default: the committed one)",
    )
    parser.add_argument(
        "--capacity-json",
        type=Path,
        default=CAPACITY_JSON,
        help="capacity ladder to check (default: the committed one)",
    )
    args = parser.parse_args(argv)

    problems = find_problems(args.experiments_md, args.capacity_json)
    names = algorithms.algorithm_names()
    if problems:
        for problem in problems:
            print(f"registry completeness: {problem}", file=sys.stderr)
        print(
            f"registry completeness: {len(problems)} problem(s) across "
            f"{len(names)} registered algorithms",
            file=sys.stderr,
        )
        return 1
    print(
        f"registry completeness: all {len(names)} registered algorithms have "
        "a measured capacity entry, a docs row and scenario membership"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
