#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from the algorithm and scenario registries.

Documents every registered algorithm and scenario (straight from the
registries, no runs needed), the suite CLI and the result-store layout; then,
unless ``--no-measure`` is given, runs every scenario through the experiment
pipeline at its registered (CLI) scale and appends the measured
paper-vs-measured sections.  Refresh with::

    python scripts/generate_experiments_md.py              # full (runs everything)
    python scripts/generate_experiments_md.py --jobs 4     # same, process-parallel
    python scripts/generate_experiments_md.py --no-measure # registry docs only
    python scripts/generate_experiments_md.py --check      # CI drift check

``--check`` regenerates the registry-derived sections in memory and verifies
the committed EXPERIMENTS.md starts with exactly those sections (no scenario
runs); a non-zero exit means someone changed a registry without regenerating
the docs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import algorithms  # noqa: E402
from repro.analysis.reporting import render_markdown_table  # noqa: E402
from repro.experiments import all_specs, run_suite  # noqa: E402

PAPER_CLAIMS = {
    "table1": (
        "Table 1 (paper): [Elk05] is the only previous deterministic CONGEST algorithm, with "
        "additive term beta_E = (kappa/eps)^{O(log kappa)} * rho^{-1/rho-1}, size "
        "O~(beta_E n^{1+1/kappa}) and superlinear running time O(n^{1+1/(2kappa)}); the new "
        "algorithm achieves beta in the [EN17] ballpark, size O(beta n^{1+1/kappa}) and "
        "low-polynomial running time O(beta n^rho / rho)."
    ),
    "table2": (
        "Table 2 (paper): survey of all near-additive spanner constructions; the new algorithm is "
        "the only deterministic CONGEST entry with low polynomial time."
    ),
    "figure1": "Figure 1: superclusters are grown around the chosen popular cluster centers; every popular center is covered (Lemma 2.4).",
    "figure2": "Figure 2: the BFS trees of the new superclusters are added to H; cluster radii stay below R_i (Lemma 2.3).",
    "figure3": "Figure 3: ruling-set vertices are 2*delta_i+1 separated, so their delta_i-neighbourhoods are pairwise disjoint (Theorem 2.2).",
    "figure4": "Figure 4: for every spanned center, the forest path from its root is added to H (length at most the superclustering depth).",
    "figure5": "Figure 5: every unclustered cluster is connected to all centers within delta_i; being unpopular, it adds fewer than deg_i paths (Lemma 2.12).",
    "figure6": "Figure 6: hopping through a neighbouring cluster costs at most 3R_j + 1 + R_i in H (Lemma 2.15).",
    "figure7": "Figure 7: end-to-end stretch decomposition; d_H <= (1+eps) d_G + beta for every pair (Lemma 2.16 / Corollary 2.18).",
    "figure8": "Figure 8: splitting a long path into eps^{-i}-length segments accumulates at most one additive beta per segment (eq. 15).",
    "scaling": "Corollaries 2.9 / 2.13: the round complexity grows like n^rho and the spanner size like n^{1+1/kappa}.",
    "ablation-epsilon": "Implementation ablation: the internal epsilon trades the additive term beta against multiplicative slack and size (eq. 17).",
    "ablation-rho": "Implementation ablation: a larger rho shrinks the n^rho round factor but inflates beta through the 1/rho exponent.",
    "ablation-kappa": "Implementation ablation: a larger kappa sparsifies the spanner (n^{1+1/kappa}) at the cost of more phases and a larger beta.",
    "family-small-world": "Workload family: small-world rewiring; the guarantee must hold across the lattice-to-expander transition, on both engines.",
    "family-geometric": "Workload family: random geometric graphs; supercluster growth over genuinely local, non-uniform neighbourhoods.",
    "family-multi-component": "Workload family: disconnected unions; the spanner must preserve the component structure exactly.",
    "family-powerlaw": "Scale-tier family: Holme-Kim preferential attachment with triangle closure; the guarantee must hold under heavy-tailed degrees and hub-dominated distances.",
    "family-hyperbolic": "Scale-tier family: hyperbolic-like graphs (Chung-Lu power-law hubs over an angular ring); heterogeneous degrees plus geometric locality, on both engines.",
    "family-torus": "Scale-tier family: 2-D tori at four-digit sizes; the canonical large-diameter regular regime where near-additive spanners beat multiplicative ones.",
    "scaling-large": "Scale tier: the Corollary 2.9 / 2.13 round and size exponents re-fitted at n up to 4096 on the O(n+m) skip-sampling G(n, p) family.",
    "scaling-growth": "Scale tier: the distributed engine's empirical CONGEST rounds/messages across the new families must grow consistently with the declared O(beta)-phase bound (rounds under the closed-form bound, exponent within rho plus slack, messages under the bandwidth ceiling).",
    "chaos-primitives": "Fault tier: every fault-hardened primitive (bounded exploration, BFS forest, ruling set) under every injected fault profile (drops, duplicates, delays, crash-stop, a mixed storm) must terminate in a typed outcome -- exact, verified-degraded (safety re-proved against the real graph), or a typed protocol fault.",
    "chaos-sweep": "Fault tier: a drop-rate x crash-fraction grid over the BFS forest; exactness erodes with fault pressure while every safety guarantee (tree edges real, distances are upper bounds, roots self-consistent) holds on every terminating schedule.",
    "dynamic-churn": "Dynamic tier: every incremental-capable algorithm maintains its spanner through steady-state churn traces (uniform, sliding-window, hotspot); the declared stretch guarantee is re-verified exhaustively after every single step and the final spanner stays within a bounded sparseness factor of a from-scratch rebuild.",
    "dynamic-growth": "Dynamic tier: on insert-only traces, absorption (insert a new edge only when the maintained spanner already violates the guarantee on it) preserves the guarantee at every step, and edge-local maintenance undercuts the rebuild-every-step work proxy -- the incremental-vs-rebuild crossover.",
}

DOC_HEADER = """\
# EXPERIMENTS — the scenario registry, suite pipeline and result store

This file is generated by `python scripts/generate_experiments_md.py`
(`--check` verifies it in CI).  It documents every algorithm registered with
the algorithm registry (`repro.algorithms`), every scenario registered with
the experiment registry (`repro.experiments.registry`), the suite CLI, and
the on-disk result store; the measured sections (regenerated by the same
script) record, for every scenario, what the paper claims and what this
reproduction measures.

Absolute numbers are not expected to match the paper: the paper proves
asymptotic bounds and has no experimental section, and all O(1) constants in
its formula tables are evaluated as 1 here.  What must (and does) hold is the
*shape*: every structural lemma holds exactly on every run, measured
resources stay inside the theoretical envelopes, and the relative comparisons
(deterministic vs. sequential selection, near-additive vs. multiplicative
stretch, sublinear round scaling) reproduce the paper's qualitative claims.

## Running scenarios

Every scenario is runnable by name, individually or as a suite:

```
PYTHONPATH=src python -m repro experiment <name> [--json out.json]
PYTHONPATH=src python -m repro suite list [--filter TAG]
PYTHONPATH=src python -m repro suite run [--filter TAG] [--jobs N] \\
    [--store DIR] [--resume] [--records DIR] [--manifest out.json]
```

(after `pip install -e .`, `repro ...` works without the `PYTHONPATH=src` /
`python -m` prefix.)

* `--filter TAG` keeps scenarios whose name or tag matches (tags are listed
  in the registry table below; e.g. `paper`, `figure`, `ablation`, `family`).
* `--jobs N` executes the expanded tasks in `N` worker processes.  Results
  are **byte-identical** to a serial run: tasks are pure functions of their
  parameters and per-task seeds, payloads are canonicalized through a JSON
  round-trip, and merges happen in expansion order.  Wall-clock timing never
  enters a record — it is reported through the suite manifest.
* `--store DIR --resume` makes re-runs incremental: each task result is
  persisted under a content address and only invalidated tasks recompute.
  A second `--resume` run of an unchanged tree recomputes **zero** tasks.

## Fault tier and pipeline hardening

The `chaos`-tagged scenarios drive deterministic fault injection (message
drops, duplicates, delays, link outages, crash-stop failures -- all pure
functions of a `fault_seed` parameter) against the CONGEST primitives and
verify, per task, which guarantee survived:

```
PYTHONPATH=src python -m repro chaos [--scenario NAME] [--jobs N] \\
    [--task-timeout SECONDS] [--task-retries K] [--failures out.json]
PYTHONPATH=src python -m repro chaos --store-smoke
```

Every task terminates in a typed outcome (`exact`, `verified-degraded`, or
`protocol-fault`), and the scenario checks enforce the tier's contract:
safety guarantees hold on every terminating schedule, zero-fault grid points
stay bit-exact, and active plans inject counted faults.  The pipeline itself
is hardened for such hostile tasks: `--task-timeout` quarantines a wedged
task (recorded in a schema-validated failure manifest) without sinking the
suite, and `--task-retries` re-runs failures with the *same* params and seed
(tasks are pure, so retries only recover transient environmental failures).
`--store-smoke` is the store-corruption self-test: it corrupts one cached
entry and proves the store invalidates it, recomputes exactly that task and
reproduces a byte-identical record.

## Result-store layout

The store is content-addressed: each task's key is
`sha256(scenario, params, workload-fingerprint, scenario-version)[:32]`,
where the workload fingerprint hashes the actual generated graph (vertex
count + sorted edge list).  Changing a parameter, a generator, or bumping a
spec's `version` therefore invalidates exactly the affected tasks.

```
<store>/
  <scenario-name>/
    <key>.json      # {"schema": "repro-result-store/v2", "scenario",
                    #  "params", "seed", "workload_fingerprint",
                    #  "version", "payload", "payload_sha256"}
```

Entries hold the canonical payload the pipeline merges, so a cache hit is
byte-for-byte indistinguishable from a fresh computation.  Writes are atomic
(temp file + rename), and every read re-verifies the `payload_sha256`
integrity checksum: a corrupted, truncated or stale-schema entry is treated
as a miss, deleted, and recomputed on the next `--resume` run.  Each store
instance also keeps an in-memory *hot layer* of already-verified entries
(guarded by the file's stat signature), so repeated reads of an unchanged
entry skip the re-read and the re-hash; `repro store audit` re-verifies every
entry from disk, invalidating any corruption it finds.

## Serving tier

`repro serve` drives a long-lived request broker (in-process API:
`repro.serve.ServiceHandle`) that answers `build`, `stretch-query` and
`distance-query` requests with the cheapest sufficient mechanism -- warm
in-memory snapshots, then the result store, then a bounded process pool:

```
PYTHONPATH=src python -m repro serve [--requests N] [--concurrency W] \\
    [--seed S] [--workers K] [--queue-limit Q] [--request-timeout SECONDS] \\
    [--store DIR] [--json out.json] [--failures out.json] [--check]
PYTHONPATH=src python -m repro store audit --store DIR [--scenario NAME]
```

The load is a seeded, Zipf-skewed mixed stream over a deterministic build
catalogue (a pure function of `--seed`).  Identical in-flight build misses
coalesce into one computation (single-flight, keyed by the store's content
address), queries batch per warm snapshot so they share the graph's
distance-cache sweeps, and requests beyond `--queue-limit` are rejected with
typed backpressure responses recorded in the same failure-manifest schema the
pipeline uses.  Responses carry provenance (`hit | coalesced | computed`,
queue/compute split) *next to* the payload, never inside it: served payloads
are byte-identical to direct `repro.build` / stretch evaluation regardless of
concurrency, coalescing or cache state.  `--check` turns a run into the CI
smoke gate (cache hits > 0, coalescing > 0, zero dropped/failed/rejected),
and `benchmarks/bench_serve.py` pins throughput, p50/p99 latency and the
cache-behavior facts in the committed `BENCH_serve.json`.
"""


def algorithm_registry_section() -> str:
    intro = (
        "Every spanner construction is a registered `AlgorithmSpec` behind the\n"
        "one `repro.build(name, graph, **params)` facade (returning the unified\n"
        "`RunResult`); scenario matrices, `repro build --algorithm NAME` and the\n"
        "guarantee property tests all draw from this registry, so a new\n"
        "registration is measured, runnable and guarantee-checked with no\n"
        "experiment-code changes.  `max n` is the capability hint\n"
        "(`max_practical_vertices`) pipelines consult instead of hard-coding\n"
        "per-algorithm size rules.\n\n"
        "```\n"
        "PYTHONPATH=src python -m repro algorithms list [--tag TAG] [--json]\n"
        "PYTHONPATH=src python -m repro build --algorithm NAME [--param KEY=VALUE]\n"
        "```\n\n"
    )
    rows = [
        {
            "algorithm": spec.name,
            "tags": ", ".join(spec.tags),
            "parameters": ", ".join(
                f"`{param.name}={param.default!r}`" for param in spec.params
            ),
            "max n": spec.max_practical_vertices or "-",
            "description": spec.description,
        }
        for spec in algorithms.all_specs()
    ]
    return "## Algorithm registry\n\n" + intro + render_markdown_table(rows)


def registry_section() -> str:
    rows = [
        {
            "scenario": spec.name,
            "tags": ", ".join(spec.tags),
            "tasks": len(spec.task_params()),
            "version": spec.version,
            "description": spec.description,
        }
        for spec in all_specs()
    ]
    return "## Scenario registry\n\n" + render_markdown_table(rows)


def registry_prefix() -> str:
    """The registry-derived document prefix (everything that needs no runs)."""
    return "\n\n".join([DOC_HEADER, algorithm_registry_section(), registry_section()])


def check_drift() -> int:
    """Verify EXPERIMENTS.md starts with the current registry-derived prefix."""
    path = REPO_ROOT / "EXPERIMENTS.md"
    if not path.exists():
        print("EXPERIMENTS.md missing; run scripts/generate_experiments_md.py",
              file=sys.stderr)
        return 1
    content = path.read_text(encoding="utf-8")
    prefix = registry_prefix()
    if not content.startswith(prefix):
        print(
            "EXPERIMENTS.md is out of date with the algorithm/scenario "
            "registries; regenerate it with scripts/generate_experiments_md.py",
            file=sys.stderr,
        )
        return 1
    print("EXPERIMENTS.md registry sections are up to date", file=sys.stderr)
    return 0


def _compact_row(row):
    """Elide nested row lists (e.g. the dynamic tier's per-step records):
    they belong in the JSON records, not in a one-line markdown cell."""
    return {
        key: (
            f"[{len(value)} nested rows]"
            if isinstance(value, list) and value and isinstance(value[0], dict)
            else value
        )
        for key, value in row.items()
    }


def record_to_markdown(record, max_rows=40):
    lines = ["**Checks**: " + ", ".join(
        f"{name} = {'PASS' if ok else 'FAIL'}" for name, ok in sorted(record.checks.items())
    )]
    if record.parameters:
        lines.append("")
        lines.append("Parameters: " + ", ".join(f"`{k}={v}`" for k, v in sorted(record.parameters.items())))
    rows = [_compact_row(row) for row in record.rows[:max_rows]]
    if rows:
        groups = []
        for row in rows:
            if groups and tuple(groups[-1][0].keys()) == tuple(row.keys()):
                groups[-1].append(row)
            else:
                groups.append([row])
        for group in groups:
            lines.append("")
            lines.append(render_markdown_table(group))
    if record.series:
        lines.append("")
        for name in sorted(record.series):
            values = ", ".join(f"{v:.4g}" for v in record.series[name])
            lines.append(f"- series `{name}`: [{values}]")
    for note in record.notes:
        lines.append(f"\n> {note}")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-measure", action="store_true",
                        help="skip the measured sections (registry docs only)")
    parser.add_argument("--check", action="store_true",
                        help="verify EXPERIMENTS.md matches the registries (no runs, no writes)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the measured runs")
    args = parser.parse_args()

    if args.check:
        return check_drift()

    sections = [registry_prefix()]
    failed = False

    if args.no_measure:
        sections.append(
            "## Measured results\n\n(omitted: regenerate without `--no-measure` "
            "to append the per-scenario paper-vs-measured sections.)"
        )
    else:
        specs = all_specs()
        print(f"running {len(specs)} scenarios (jobs={args.jobs}) ...", file=sys.stderr)
        result = run_suite(specs, jobs=args.jobs)
        for outcome in result.outcomes:
            claim = PAPER_CLAIMS.get(outcome.name, "")
            title = f"## {outcome.name}"
            if outcome.record is None:
                sections.append(f"{title}\n\n{claim}\n\n**ERROR**: {outcome.error}")
                continue
            body = record_to_markdown(outcome.record)
            sections.append(f"{title}\n\n{claim}\n\n{body}")
        if not result.ok:
            failed = True
            print("ERROR: some scenarios failed; see the generated file", file=sys.stderr)

    output = "\n\n".join(sections) + "\n"
    (REPO_ROOT / "EXPERIMENTS.md").write_text(output, encoding="utf-8")
    print(f"wrote {REPO_ROOT / 'EXPERIMENTS.md'} ({len(output)} bytes)", file=sys.stderr)
    # The file is still written (the ERROR sections make the failure easy to
    # inspect), but a scripted regeneration must not pass silently.
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
