"""Tests for the table/series renderers."""

from __future__ import annotations

from repro.analysis import format_value, render_markdown_table, render_series, render_table


def test_format_value_variants():
    assert format_value(None) == "-"
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(0.0) == "0"
    assert format_value(float("inf")) == "inf"
    assert format_value(1234567.0) == "1.23e+06"
    assert format_value(0.25) == "0.25"
    assert format_value("text") == "text"


def test_render_table_alignment_and_header():
    rows = [{"name": "a", "value": 1}, {"name": "bbbb", "value": 23}]
    text = render_table(rows, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 2 + 1 + len(rows)


def test_render_table_empty():
    assert "(no rows)" in render_table([])
    assert render_table([], title="t").startswith("t")


def test_render_table_respects_column_selection():
    rows = [{"a": 1, "b": 2}]
    text = render_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_render_markdown_table():
    rows = [{"x": 1, "y": 2.5}]
    text = render_markdown_table(rows)
    assert text.splitlines()[0] == "| x | y |"
    assert "---" in text.splitlines()[1]
    assert "2.5" in text.splitlines()[2]


def test_render_markdown_empty():
    assert render_markdown_table([]) == "(no rows)"


def test_render_series():
    text = render_series({"rounds": [1.0, 2.0, 4.0]}, x_label="n", title="scaling")
    assert "scaling" in text
    assert "rounds (n)" in text
