"""Tests for the table/series renderers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    format_value,
    percentile,
    percentile_summary,
    render_markdown_table,
    render_serve_report,
    render_series,
    render_table,
)


def test_format_value_variants():
    assert format_value(None) == "-"
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(0.0) == "0"
    assert format_value(float("inf")) == "inf"
    assert format_value(1234567.0) == "1.23e+06"
    assert format_value(0.25) == "0.25"
    assert format_value("text") == "text"


def test_render_table_alignment_and_header():
    rows = [{"name": "a", "value": 1}, {"name": "bbbb", "value": 23}]
    text = render_table(rows, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 2 + 1 + len(rows)


def test_render_table_empty():
    assert "(no rows)" in render_table([])
    assert render_table([], title="t").startswith("t")


def test_render_table_respects_column_selection():
    rows = [{"a": 1, "b": 2}]
    text = render_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_render_markdown_table():
    rows = [{"x": 1, "y": 2.5}]
    text = render_markdown_table(rows)
    assert text.splitlines()[0] == "| x | y |"
    assert "---" in text.splitlines()[1]
    assert "2.5" in text.splitlines()[2]


def test_render_markdown_empty():
    assert render_markdown_table([]) == "(no rows)"


def test_render_series():
    text = render_series({"rounds": [1.0, 2.0, 4.0]}, x_label="n", title="scaling")
    assert "scaling" in text
    assert "rounds (n)" in text


class TestPercentile:
    """The one nearest-rank percentile every report shares (PR 9)."""

    def test_nearest_rank_values(self):
        values = [15.0, 20.0, 35.0, 40.0, 50.0]
        assert percentile(values, 30) == 20.0
        assert percentile(values, 40) == 20.0
        assert percentile(values, 50) == 35.0
        assert percentile(values, 100) == 50.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == percentile([1.0, 2.0, 3.0], 50)

    def test_extremes_and_empty(self):
        assert percentile([7.0, 3.0], 0) == 3.0
        assert percentile([], 50) == 0.0
        assert percentile([4.0], 99) == 4.0

    def test_reported_quantile_is_an_observed_value(self):
        values = [float(v) for v in range(101)]
        for q in (1, 25, 50, 75, 99):
            assert percentile(values, q) in values

    def test_q_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_summary_shape(self):
        summary = percentile_summary([1.0, 2.0, 3.0, 4.0])
        assert summary == {"p50": 2.0, "p99": 4.0}
        assert percentile_summary([5.0], quantiles=(90,)) == {"p90": 5.0}


def test_render_serve_report_shows_the_load_facts():
    report = {
        "requests": 100,
        "elapsed_seconds": 0.5,
        "throughput_rps": 200.0,
        "dropped": 0,
        "latency_ms": {"p50": 1.0, "p99": 9.0, "max": 12.0},
        "hit_rate": 0.8,
        "coalesce_rate": 0.05,
        "max_batch": 4,
        "stats": {"pool_submissions": 6},
        "status_counts": {"hit": 80, "computed": 15, "coalesced": 5},
        "kind_counts": {"build": 40, "stretch-query": 60},
        "failure_count": 0,
    }
    text = render_serve_report(report)
    assert "100 requests" in text
    assert "p50 1" in text and "p99 9" in text
    assert "hit rate 0.8" in text
    assert "pool submissions 6" in text
    assert "responses by status" in text
    assert "responses by kind" in text
    assert "no quarantined requests" in text


def test_render_serve_report_flags_quarantined_requests():
    report = {"requests": 1, "status_counts": {"failed": 1}, "failure_count": 1}
    assert "QUARANTINED REQUESTS: 1" in render_serve_report(report)
