"""Guarantee-kind dispatch: one verifier per declared promise."""

from __future__ import annotations

import pytest

from repro import algorithms
from repro.analysis import measured_average_stretch, verify_registered_guarantee
from repro.graphs import gnp_random_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.mst import kruskal_msf


@pytest.fixture()
def gnp():
    return gnp_random_graph(32, 0.15, seed=3)


def test_stretch_kind_passes_for_spanner(gnp):
    spec = algorithms.get_spec("greedy")
    run = spec.run(gnp, {"stretch": 3})
    check = verify_registered_guarantee(spec, run)
    assert check.kind == "stretch"
    assert check.ok and check.failure is None
    assert check.detail["pairs_checked"] > 0


def test_exact_mst_kind_passes_for_protocol(gnp):
    spec = algorithms.get_spec("elkin-mst-2017")
    run = spec.run(gnp, {})
    check = verify_registered_guarantee(spec, run)
    assert check.kind == "exact-mst"
    assert check.ok
    assert check.detail["total_weight"] == check.detail["reference_weight"]


def test_exact_mst_kind_fails_on_wrong_edge_set(gnp):
    spec = algorithms.get_spec("elkin-mst-2017")
    run = spec.run(gnp, {})
    # Drop one MSF edge: the verifier must report the exact drift.
    u, v = kruskal_msf(gnp)[0]
    broken = Graph(gnp.num_vertices, [e for e in run.spanner.edges() if e != (u, v)])
    run.spanner = broken
    check = verify_registered_guarantee(spec, run)
    assert not check.ok
    assert "1 missing" in check.failure


def test_average_stretch_kind_passes_for_tree(gnp):
    spec = algorithms.get_spec("eest-low-stretch-tree")
    run = spec.run(gnp, {})
    check = verify_registered_guarantee(spec, run)
    assert check.kind == "average-stretch"
    assert check.ok
    assert check.detail["average_stretch"] <= check.detail["declared_bound"]


def test_average_stretch_kind_fails_on_disconnecting_subgraph():
    spec = algorithms.get_spec("eest-low-stretch-tree")
    graph = path_graph(10)
    run = spec.run(graph, {})
    run.spanner = Graph(10, [])  # preserves nothing
    check = verify_registered_guarantee(spec, run)
    assert not check.ok
    assert "not the tree" in check.failure


def test_average_stretch_kind_fails_on_tiny_declared_bound(gnp):
    spec = algorithms.get_spec("eest-low-stretch-tree")
    run = spec.run(gnp, {})
    run.details["average_stretch_bound"] = 1.0  # only the graph itself achieves this
    check = verify_registered_guarantee(spec, run)
    assert not check.ok
    assert "exceeds the declared bound" in check.failure


def test_measured_average_stretch_identity():
    graph = gnp_random_graph(24, 0.2, seed=1)
    check = measured_average_stretch(graph, graph)
    assert check.ok
    assert check.detail["average_stretch"] == pytest.approx(1.0)


def test_unknown_kind_rejected_at_registration():
    with pytest.raises(ValueError):
        algorithms.AlgorithmSpec(
            name="bogus",
            description="",
            build=lambda graph, **_: None,
            guarantee_kind="best-effort",
        )
