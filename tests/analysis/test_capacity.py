"""Tests for the measured capacity ladder (:mod:`repro.analysis.capacity`).

The search core is exercised on *synthetic* timing functions -- no spanner is
ever built -- so the doubling/contraction/binary-search logic is pinned
exactly, including its probe economy.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms import algorithm_names
from repro.analysis.capacity import (
    CAPACITY_SCHEMA,
    capacity_ladder,
    hard_capped_probe,
    largest_n_within_budget,
    load_ladder,
    measure_algorithm_capacity,
    render_ladder,
    save_ladder,
)


def linear_cost(scale: float):
    """A probe whose cost grows linearly: probe(n) = n / scale seconds."""
    return lambda n: n / scale


class TestLargestNWithinBudget:
    def test_linear_probe_finds_budget_boundary(self):
        # budget 1.0s at 1000 n/s => true capacity 1000; the search must land
        # within the declared 12.5% resolution, never above the true value.
        capacity, probes = largest_n_within_budget(
            linear_cost(1000.0), 1.0, start_n=64, max_n=16384
        )
        assert 875 <= capacity <= 1000
        assert all(seconds == n / 1000.0 for n, seconds in probes)

    def test_capacity_is_never_over_budget(self):
        for scale in (100.0, 333.0, 1000.0, 5000.0):
            capacity, _ = largest_n_within_budget(
                linear_cost(scale), 1.0, start_n=64, max_n=16384
            )
            assert capacity / scale <= 1.0
            assert capacity >= 16  # at least the floor when anything fits

    def test_window_cap_when_budget_never_exhausted(self):
        capacity, probes = largest_n_within_budget(
            lambda n: 0.001, 1.0, start_n=64, max_n=4096
        )
        assert capacity == 4096
        # Pure doubling: 64, 128, ..., 4096 -- no binary search needed.
        assert [n for n, _ in probes] == [64, 128, 256, 512, 1024, 2048, 4096]

    def test_contraction_when_start_is_over_budget(self):
        # capacity ~ 100 but the search starts at 1024: it must contract.
        capacity, probes = largest_n_within_budget(
            linear_cost(100.0), 1.0, start_n=1024, max_n=4096
        )
        assert 64 <= capacity <= 100
        assert probes[0][0] == 1024 and probes[0][1] > 1.0

    def test_nothing_fits_returns_zero(self):
        capacity, probes = largest_n_within_budget(
            lambda n: 10.0, 1.0, start_n=256, max_n=1024
        )
        assert capacity == 0
        # Contracted down to the floor and gave up.
        assert probes[-1][0] == 16

    def test_step_cost_function(self):
        # A cliff at n=600: constant cheap below, hopeless above.
        capacity, _ = largest_n_within_budget(
            lambda n: 0.01 if n <= 600 else 99.0, 1.0, start_n=64, max_n=16384
        )
        assert 512 <= capacity <= 600

    def test_probe_economy_is_logarithmic(self):
        _, probes = largest_n_within_budget(
            linear_cost(3000.0), 1.0, start_n=64, max_n=1 << 20
        )
        assert len(probes) <= 20

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            largest_n_within_budget(linear_cost(1.0), 0.0)
        with pytest.raises(ValueError):
            largest_n_within_budget(linear_cost(1.0), 1.0, start_n=8, max_n=4)


class TestLadder:
    def test_measure_algorithm_capacity_uses_injected_probe(self):
        entry = measure_algorithm_capacity(
            "greedy", 1.0, probe=linear_cost(500.0), start_n=64, max_n=8192
        )
        assert 400 <= entry["max_practical_vertices"] <= 500
        assert entry["budget_exhausted"] is True
        assert entry["probes"]
        assert entry["declared_hint"]  # the registered (measured) hint

    def test_capacity_ladder_covers_every_registered_algorithm(self):
        ladder = capacity_ladder(
            1.0,
            probe_factory=lambda name: linear_cost(1000.0),
            start_n=64,
            max_n=2048,
        )
        assert ladder["schema"] == CAPACITY_SCHEMA
        assert set(ladder["entries"]) == set(algorithm_names())
        for entry in ladder["entries"].values():
            assert 875 <= entry["max_practical_vertices"] <= 1000

    def test_ladder_is_stamped_with_measurement_provenance(self):
        # Capacities are only comparable on the backend/host that measured
        # them, so every ladder carries the kernel + host context (PR 7).
        ladder = capacity_ladder(
            1.0,
            algorithms=["greedy"],
            probe_factory=lambda name: linear_cost(1000.0),
            start_n=64,
            max_n=512,
        )
        from repro.kernels import KERNEL_MODES, active_backend, kernel_mode

        assert ladder["kernel_backend"] == active_backend()
        assert ladder["kernel_mode"] == kernel_mode()
        assert ladder["kernel_backend"] in ("python", "numpy")
        assert ladder["kernel_mode"] in KERNEL_MODES
        host = ladder["host"]
        assert set(host) == {"machine", "python", "cpus"}
        assert isinstance(host["cpus"], int) and host["cpus"] >= 1

    def test_ladder_roundtrip_and_render(self, tmp_path):
        ladder = capacity_ladder(
            2.0,
            algorithms=["greedy", "new-distributed"],
            probe_factory=lambda name: linear_cost(100.0),
            start_n=64,
            max_n=512,
        )
        path = tmp_path / "ladder.json"
        save_ladder(ladder, path)
        loaded = load_ladder(path)
        assert loaded == json.loads(path.read_text())
        assert set(loaded["entries"]) == {"greedy", "new-distributed"}
        rendered = render_ladder(loaded)
        assert "greedy" in rendered and "new-distributed" in rendered
        assert "budget 2.0s" in rendered

    def test_load_ladder_rejects_junk(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert load_ladder(missing) is None
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        assert load_ladder(bad) is None
        wrong_schema = tmp_path / "wrong.json"
        wrong_schema.write_text(json.dumps({"schema": "other/v9"}), encoding="utf-8")
        assert load_ladder(wrong_schema) is None


class TestProbeHardTimeout:
    def test_fast_probe_passes_through_uncapped_reading(self):
        capped = hard_capped_probe(linear_cost(1000.0), cap_seconds=5.0)
        assert capped(100) == 0.1

    def test_hung_probe_aborted_at_the_cap(self):
        import time

        def hang(n):
            time.sleep(30.0)
            return 30.0

        capped = hard_capped_probe(hang, cap_seconds=0.2)
        start = time.monotonic()
        assert capped(64) == 0.2
        assert time.monotonic() - start < 5.0

    def test_off_main_thread_falls_back_to_post_hoc_clamp(self):
        import threading
        import time

        def slow(n):
            time.sleep(0.3)
            return 0.3

        capped = hard_capped_probe(slow, cap_seconds=0.1)
        readings = []
        worker = threading.Thread(target=lambda: readings.append(capped(64)))
        worker.start()
        worker.join(timeout=10)
        assert readings == [0.1]

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            hard_capped_probe(linear_cost(1.0), cap_seconds=0)

    def test_runaway_probe_yields_budget_exhausted_entry(self):
        import time

        def probe(n):
            if n <= 128:
                return 0.01
            time.sleep(30.0)
            return 30.0

        start = time.monotonic()
        entry = measure_algorithm_capacity(
            "greedy", 0.5, probe=probe, start_n=64, max_n=4096,
            probe_timeout_factor=2.0,
        )
        assert time.monotonic() - start < 15.0
        assert entry["budget_exhausted"] is True
        assert entry["max_practical_vertices"] <= 128
        assert entry["probe_timeout_seconds"] == 1.0
        assert entry["probes_timed_out"] >= 1

    def test_factor_none_runs_uncapped(self):
        entry = measure_algorithm_capacity(
            "greedy", 1.0, probe=linear_cost(500.0), start_n=64, max_n=1024,
            probe_timeout_factor=None,
        )
        assert entry["probe_timeout_seconds"] is None
        assert entry["probes_timed_out"] == 0

    def test_invalid_factor_rejected(self):
        for factor in (-1.0, 0.5, 1.0):
            with pytest.raises(ValueError, match="probe_timeout_factor"):
                measure_algorithm_capacity(
                    "greedy", 1.0, probe=linear_cost(500.0), probe_timeout_factor=factor
                )
