"""Tests for the stretch-verification module."""

from __future__ import annotations

import pytest

from repro.analysis import (
    PairStretch,
    best_additive_for_multiplicative,
    empirical_additive_term,
    evaluate_stretch,
    evaluate_stretch_sampled,
)
from repro.core import StretchGuarantee
from repro.graphs import Graph, bfs_tree_edges, cycle_graph, gnp_random_graph, grid_graph, path_graph


def spanning_tree_of(graph):
    return graph.subgraph_from_edges(bfs_tree_edges(graph, 0))


class TestEvaluateStretch:
    def test_identical_graphs_have_stretch_one(self, grid_5x5):
        report = evaluate_stretch(grid_5x5, grid_5x5.copy())
        assert report.max_multiplicative == 1.0
        assert report.max_additive_surplus == 0.0
        assert report.satisfies_guarantee

    def test_cycle_minus_edge(self):
        graph = cycle_graph(10)
        spanner = graph.subgraph_from_edges([e for e in graph.edges() if e != (0, 9)])
        report = evaluate_stretch(graph, spanner)
        assert report.max_additive_surplus == 8
        assert report.max_multiplicative == 9.0

    def test_violations_detected_against_tight_guarantee(self):
        graph = cycle_graph(10)
        spanner = graph.subgraph_from_edges([e for e in graph.edges() if e != (0, 9)])
        guarantee = StretchGuarantee(multiplicative=1.0, additive=4.0)
        report = evaluate_stretch(graph, spanner, guarantee=guarantee)
        assert not report.satisfies_guarantee
        assert all(isinstance(v, PairStretch) for v in report.violations)

    def test_loose_guarantee_accepted(self):
        graph = cycle_graph(10)
        spanner = spanning_tree_of(graph)
        guarantee = StretchGuarantee(multiplicative=1.0, additive=10.0)
        assert evaluate_stretch(graph, spanner, guarantee=guarantee).satisfies_guarantee

    def test_disconnected_mismatch_detected(self):
        graph = path_graph(4)
        broken = Graph(4, [(0, 1), (2, 3)])
        report = evaluate_stretch(graph, broken)
        assert report.disconnected_mismatches > 0
        assert not report.satisfies_guarantee

    def test_explicit_pairs_only(self, grid_5x5):
        spanner = spanning_tree_of(grid_5x5)
        report = evaluate_stretch(grid_5x5, spanner, pairs=[(0, 24), (0, 1)])
        assert report.pairs_checked == 2

    def test_mismatched_vertex_sets_rejected(self):
        with pytest.raises(ValueError):
            evaluate_stretch(Graph(3), Graph(4))

    def test_surplus_by_distance_buckets(self, grid_5x5):
        spanner = spanning_tree_of(grid_5x5)
        report = evaluate_stretch(grid_5x5, spanner)
        assert set(report.surplus_by_distance.keys()) <= set(range(1, 20))
        assert all(surplus >= 0 for surplus in report.surplus_by_distance.values())

    def test_mean_statistics_bounded_by_max(self, small_random):
        spanner = spanning_tree_of(small_random) if small_random.num_edges else small_random.copy()
        report = evaluate_stretch(small_random, spanner)
        assert report.mean_multiplicative <= report.max_multiplicative + 1e-9
        assert report.mean_additive_surplus <= report.max_additive_surplus + 1e-9


class TestSampledAndFitting:
    def test_sampled_subset_of_full(self, medium_random):
        spanner = spanning_tree_of(medium_random)
        sampled = evaluate_stretch_sampled(medium_random, spanner, num_pairs=100, seed=1)
        full = evaluate_stretch(medium_random, spanner)
        assert sampled.pairs_checked <= 100
        assert sampled.max_additive_surplus <= full.max_additive_surplus + 1e-9

    def test_best_additive_for_multiplicative(self):
        pairs = [PairStretch(0, 1, 10, 16), PairStretch(0, 2, 2, 5)]
        assert best_additive_for_multiplicative(pairs, 1.0) == 6
        assert best_additive_for_multiplicative(pairs, 2.0) == 1.0
        assert best_additive_for_multiplicative(pairs, 10.0) == 0.0

    def test_empirical_additive_term(self):
        graph = cycle_graph(8)
        spanner = graph.subgraph_from_edges([e for e in graph.edges() if e != (0, 7)])
        assert empirical_additive_term(graph, spanner, multiplicative=1.0) == 6

    def test_report_to_dict(self, small_random):
        spanner = small_random.copy()
        report = evaluate_stretch(small_random, spanner)
        data = report.to_dict()
        assert data["pairs_checked"] == report.pairs_checked
        assert data["num_violations"] == 0
