"""Tests for the fault-degradation verifiers (analysis/degradation.py)."""

from __future__ import annotations

import pytest

from repro.analysis.degradation import (
    degradation_summary,
    verify_degraded_exploration,
    verify_degraded_forest,
    verify_degraded_ruling_set,
)
from repro.congest import FaultPlan, ProtocolFault, Simulator
from repro.graphs import cycle_graph, gnp_random_graph, path_graph
from repro.primitives.bfs_forest import run_bfs_forest
from repro.primitives.exploration import run_bounded_exploration
from repro.primitives.ruling_set import run_ruling_set


def _gnp(n=40, p=0.12, seed=7):
    return gnp_random_graph(n, p, seed=seed)


# ----------------------------------------------------------------------
# Fault-free runs pass everything
# ----------------------------------------------------------------------
def test_clean_forest_all_passed():
    graph = _gnp()
    forest = run_bfs_forest(Simulator(graph), sources=[0, 11], depth=4)
    report = verify_degraded_forest(graph, forest, [0, 11])
    assert report.all_passed, report.failures()
    assert report.safety_intact
    assert report.degraded() == []


def test_clean_exploration_all_passed():
    graph = _gnp()
    centers = list(range(0, 40, 5))
    result = run_bounded_exploration(Simulator(graph), centers, depth=2, cap=3)
    baseline = run_bounded_exploration(Simulator(graph), centers, depth=2, cap=3)
    report = verify_degraded_exploration(graph, result, baseline=baseline)
    assert report.all_passed, report.failures()


def test_clean_ruling_set_all_passed():
    graph = _gnp()
    result = run_ruling_set(Simulator(graph), range(40), q=2, c=2)
    report = verify_degraded_ruling_set(graph, range(40), result)
    assert report.all_passed, report.failures()


# ----------------------------------------------------------------------
# Faulted runs: safety survives, exactness may degrade
# ----------------------------------------------------------------------
def test_faulted_forest_safety_survives():
    graph = _gnp(48, 0.1, seed=3)
    plan = FaultPlan(seed=17, drop_rate=0.35, delay_rate=0.3, max_delay=2)
    forest = run_bfs_forest(Simulator(graph), sources=[0, 20], depth=4, fault_plan=plan)
    report = verify_degraded_forest(graph, forest, [0, 20])
    assert report.by_name("forest-parents-real-edges").passed
    assert report.safety_intact
    # Heavy drops on this seed strand some vertices.
    assert not report.by_name("forest-coverage-complete").passed
    summary = degradation_summary(report)
    assert summary["safety_intact"] is True
    assert "forest-coverage-complete" in summary["degraded"]


def test_faulted_exploration_safety_survives():
    graph = _gnp(40, 0.12, seed=9)
    centers = list(range(0, 40, 4))
    plan = FaultPlan(seed=5, drop_rate=0.4)
    baseline = run_bounded_exploration(Simulator(graph), centers, depth=2, cap=3)
    result = run_bounded_exploration(
        Simulator(graph), centers, depth=2, cap=3, fault_plan=plan
    )
    report = verify_degraded_exploration(graph, result, baseline=baseline)
    assert report.by_name("exploration-via-chains-real").passed
    assert report.by_name("exploration-distances-upper-bound-truth").passed
    assert report.safety_intact
    assert not report.by_name("exploration-knowledge-complete").passed
    assert result.fault_counters is not None
    assert result.fault_counters["dropped"] > 0


def test_faulted_ruling_set_domination_survives():
    graph = _gnp(48, 0.1, seed=21)
    plan = FaultPlan(seed=33, drop_rate=0.5)
    result = run_ruling_set(Simulator(graph), range(48), q=2, c=2, fault_plan=plan)
    report = verify_degraded_ruling_set(graph, range(48), result)
    assert report.by_name("ruling-set-subset-of-candidates").passed
    assert report.by_name("ruling-set-dominates").passed
    assert report.safety_intact
    assert result.fault_counters is not None
    assert result.fault_counters["dropped"] > 0


def test_faulted_primitives_deterministic():
    graph = _gnp(40, 0.12, seed=2)
    plan = FaultPlan(seed=8, drop_rate=0.3, crash_fraction=0.1, crash_round=3)

    def run_once():
        result = run_ruling_set(Simulator(graph), range(40), q=2, c=2, fault_plan=plan)
        return (sorted(result.ruling_set), result.fault_counters)

    assert run_once() == run_once()


# ----------------------------------------------------------------------
# Verifier detection: corrupted structures are caught
# ----------------------------------------------------------------------
def test_forest_verifier_catches_fake_parent():
    graph = path_graph(6)
    forest = run_bfs_forest(Simulator(graph), sources=[0], depth=5)
    forest.parent[4] = 1  # not an edge of the path
    report = verify_degraded_forest(graph, forest, [0])
    assert not report.by_name("forest-parents-real-edges").passed
    assert not report.safety_intact


def test_exploration_verifier_catches_shortcut_distance():
    graph = cycle_graph(8)
    result = run_bounded_exploration(Simulator(graph), [0], depth=3, cap=2)
    # Claim a distance smaller than the real one: safety must trip.
    victim = [v for v in range(8) if result.known_dist[v].get(0) == 3][0]
    result.known_dist[victim][0] = 1
    report = verify_degraded_exploration(graph, result)
    assert not report.safety_intact


def test_ruling_set_verifier_catches_non_candidate():
    graph = path_graph(10)
    result = run_ruling_set(Simulator(graph), range(0, 10, 2), q=1, c=2)
    result.ruling_set.add(1)  # not a candidate
    report = verify_degraded_ruling_set(graph, range(0, 10, 2), result)
    assert not report.by_name("ruling-set-subset-of-candidates").passed


# ----------------------------------------------------------------------
# ProtocolFault: the typed terminal outcome
# ----------------------------------------------------------------------
def test_protocol_fault_carries_identity():
    err = ProtocolFault("bfs-forest", "round-timeout", attempts=3, fault_counters={"dropped": 5})
    assert err.label == "bfs-forest"
    assert err.reason == "round-timeout"
    assert err.attempts == 3
    assert err.fault_counters == {"dropped": 5}
    assert "3 attempts" in str(err)


def test_forest_attempts_recorded():
    graph = _gnp(30, 0.15, seed=4)
    plan = FaultPlan(seed=1, drop_rate=0.2)
    forest = run_bfs_forest(Simulator(graph), sources=[0], depth=3, fault_plan=plan, max_attempts=3)
    assert 1 <= forest.attempts <= 3
