"""Tests for the theoretical bound calculators (Tables 1 and 2)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    beta_abp17,
    beta_elkin05,
    beta_elkin_neiman,
    beta_elkin_peleg,
    beta_elkin_peleg_lower_bound,
    beta_new,
    beta_pettie09,
    beta_pettie10,
    beta_thorup_zwick,
    deterministic_congest_speedup,
    table1_rows,
    table2_rows,
)


class TestBetaFormulas:
    def test_all_betas_positive(self):
        for fn in (beta_elkin_peleg, beta_abp17, beta_thorup_zwick):
            assert fn(0.5, 4) > 0
        for fn in (beta_elkin05, beta_elkin_neiman, beta_new, beta_pettie10):
            assert fn(0.5, 4, 0.25) > 0
        assert beta_pettie09(0.5, 1000) > 0
        assert beta_elkin_peleg_lower_bound(0.5, 8) > 0

    def test_betas_decrease_in_epsilon(self):
        for eps_small, eps_big in [(0.1, 0.5)]:
            assert beta_elkin_peleg(eps_small, 8) > beta_elkin_peleg(eps_big, 8)
            assert beta_new(eps_small, 8, 0.25) > beta_new(eps_big, 8, 0.25)
            assert beta_elkin_neiman(eps_small, 8, 0.25) > beta_elkin_neiman(eps_big, 8, 0.25)

    def test_lower_bound_below_upper_bound(self):
        for kappa in (4, 8, 16, 64):
            assert beta_elkin_peleg_lower_bound(0.5, kappa) <= beta_elkin_peleg(0.5, kappa)

    def test_new_beta_eventually_beats_elkin05(self):
        """The paper's point: the new additive term scales much better in kappa."""
        assert beta_new(0.5, 512, 0.25) < beta_elkin05(0.5, 512, 0.25)

    def test_new_beta_same_ballpark_as_en17(self):
        """beta_new and beta_EN have the same exponent structure (log kappa + 1/rho)."""
        import math

        ratio = math.log(beta_new(0.5, 32, 0.25)) / math.log(beta_elkin_neiman(0.5, 32, 0.25))
        assert 0.5 < ratio < 3.0


class TestTables:
    def test_table1_structure(self):
        rows = table1_rows(0.5, 3, 1 / 3, 1000)
        assert len(rows) == 2
        assert rows[0].deterministic and rows[1].deterministic
        assert all(row.model == "CONGEST" for row in rows)
        assert rows[0].running_time == pytest.approx(1000 ** (1 + 1 / 6))

    def test_table2_has_fourteen_rows(self):
        rows = table2_rows(0.5, 3, 1 / 3, 1000)
        assert len(rows) == 14
        references = [row.reference for row in rows]
        assert any("EN17" in r for r in references)
        assert any("New" in r for r in references)
        assert any("EP01" in r for r in references)

    def test_table2_models_are_known(self):
        for row in table2_rows(0.5, 4, 0.3, 500):
            assert row.model in ("centralized", "LOCAL", "CONGEST")

    def test_table2_row_to_dict(self):
        row = table2_rows(0.5, 3, 1 / 3, 100)[0]
        data = row.to_dict()
        assert set(data) >= {"reference", "model", "deterministic", "stretch_additive", "size"}

    def test_speedup_grows_with_n(self):
        small = deterministic_congest_speedup(0.5, 3, 1 / 3, 10 ** 4)
        large = deterministic_congest_speedup(0.5, 3, 1 / 3, 10 ** 8)
        assert large > small

    def test_default_m_used_when_omitted(self):
        rows = table2_rows(0.5, 3, 1 / 3, 400)
        assert rows[0].running_time is not None
