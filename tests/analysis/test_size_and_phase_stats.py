"""Tests for size accounting and the lemma-verification report."""

from __future__ import annotations

import pytest

from repro.analysis import (
    compression_summary,
    per_phase_interconnection_budget,
    size_report,
    verify_run,
)
from repro.core import build_spanner
from repro.graphs import gnp_random_graph, planted_partition_graph


@pytest.fixture(scope="module")
def run_result():
    graph = planted_partition_graph(5, 10, 0.6, 0.03, seed=6)
    from repro.core import SpannerParameters

    params = SpannerParameters.from_internal_epsilon(0.25, kappa=3, rho=1 / 3)
    return build_spanner(graph, parameters=params)


class TestSizeReport:
    def test_within_bound_and_consistent_totals(self, run_result):
        report = size_report(run_result)
        assert report.within_bound
        assert report.num_spanner_edges == run_result.num_edges
        assert report.superclustering_edges + report.interconnection_edges == report.num_spanner_edges
        assert sum(report.per_phase_edges.values()) == report.num_spanner_edges

    def test_density_ratio(self, run_result):
        report = size_report(run_result)
        assert 0 < report.density_ratio <= 1.0

    def test_to_dict_keys(self, run_result):
        data = size_report(run_result).to_dict()
        assert data["within_bound"] is True
        assert "per_phase_edges" in data

    def test_interconnection_budget_rows(self, run_result):
        rows = per_phase_interconnection_budget(run_result)
        assert len(rows) == len(run_result.phase_records)
        assert all(row["within_budget"] == 1.0 for row in rows)

    def test_compression_summary(self, run_result):
        summary = compression_summary(run_result)
        assert summary["spanner_edges"] <= summary["graph_edges"]
        assert summary["compression"] <= 1.0
        assert summary["normalized_size"] > 0


class TestVerificationReport:
    def test_all_checks_pass_on_valid_run(self, run_result):
        report = verify_run(run_result)
        assert report.all_passed
        assert report.failures() == []

    def test_expected_check_names_present(self, run_result):
        report = verify_run(run_result)
        names = {check.name for check in report.checks}
        assert {
            "spanner-is-subgraph",
            "connectivity-preserved",
            "corollary-2.5-partition",
            "lemma-2.3-radius-bounds",
            "lemma-2.4-popular-superclustered",
            "lemmas-2.10-2.11-cluster-counts",
            "theorem-2.2-ruling-set-separation",
            "theorem-2.1-shortest-interconnection-paths",
        } <= names

    def test_by_name_lookup(self, run_result):
        report = verify_run(run_result)
        assert report.by_name("spanner-is-subgraph").passed
        with pytest.raises(KeyError):
            report.by_name("not-a-check")

    def test_to_dict(self, run_result):
        data = verify_run(run_result).to_dict()
        assert data["all_passed"] is True
        assert len(data["checks"]) >= 8

    def test_tampered_run_is_caught(self, run_result):
        """Corrupt the result (drop spanner edges) and make sure checks fail."""
        import copy

        tampered = copy.copy(run_result)
        tampered.spanner = run_result.graph.subgraph_from_edges([])
        report = verify_run(tampered, check_interconnection_paths=True)
        assert not report.all_passed

    def test_interconnection_path_check_optional(self, run_result):
        fast = verify_run(run_result, check_interconnection_paths=False)
        names = {check.name for check in fast.checks}
        assert "theorem-2.1-shortest-interconnection-paths" not in names
