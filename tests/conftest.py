"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.core.parameters import SpannerParameters
from repro.graphs import (
    Graph,
    clustered_path_graph,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    planted_partition_graph,
    random_tree,
    star_graph,
)


@pytest.fixture
def empty_graph_5():
    """Five isolated vertices."""
    return Graph(5)


@pytest.fixture
def triangle():
    """The triangle K_3."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path_6():
    """A path on six vertices."""
    return path_graph(6)


@pytest.fixture
def cycle_8():
    """A cycle on eight vertices."""
    return cycle_graph(8)


@pytest.fixture
def grid_5x5():
    """A 5x5 grid."""
    return grid_graph(5, 5)


@pytest.fixture
def small_random():
    """A small, fixed random graph (likely disconnected into a few pieces)."""
    return gnp_random_graph(40, 0.08, seed=4)


@pytest.fixture
def medium_random():
    """A medium random graph used by the engine tests."""
    return gnp_random_graph(90, 0.06, seed=11)


@pytest.fixture
def community_graph():
    """A planted-community graph with many popular centers."""
    return planted_partition_graph(6, 10, p_intra=0.6, p_inter=0.03, seed=2)


@pytest.fixture
def long_cluster_graph():
    """Dense clusters along a path: large diameter plus dense local structure."""
    return clustered_path_graph(8, 8)


@pytest.fixture
def default_params():
    """The standard internal-epsilon parameter setting used across the tests."""
    return SpannerParameters.from_internal_epsilon(0.25, kappa=3, rho=1.0 / 3.0)


@pytest.fixture
def tight_params():
    """A second parameter setting with two phases only (kappa=2, rho=1/2)."""
    return SpannerParameters.from_internal_epsilon(0.5, kappa=2, rho=0.5)


GRAPH_FAMILY_FIXTURES = [
    "triangle",
    "path_6",
    "cycle_8",
    "grid_5x5",
    "small_random",
    "community_graph",
    "long_cluster_graph",
]


@pytest.fixture(params=GRAPH_FAMILY_FIXTURES)
def any_graph(request):
    """Parametrized fixture cycling over the main graph families."""
    return request.getfixturevalue(request.param)
