"""Tests for the seeded load generator and closed-loop driver."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import (
    BuildRequest,
    DistanceQuery,
    LoadReport,
    SpannerService,
    StretchQuery,
    default_catalogue,
    generate_requests,
    run_load,
    zipf_weights,
)


class TestSeedPurity:
    def test_same_seed_same_stream(self):
        assert generate_requests(80, seed=4) == generate_requests(80, seed=4)

    def test_different_seeds_differ(self):
        assert generate_requests(80, seed=4) != generate_requests(80, seed=5)

    def test_stream_is_not_affected_by_global_random_state(self):
        import random

        random.seed(123)
        first = generate_requests(30, seed=0)
        random.seed(999)
        second = generate_requests(30, seed=0)
        assert first == second

    def test_count_validation(self):
        assert generate_requests(0) == []
        with pytest.raises(ValueError):
            generate_requests(-1)
        with pytest.raises(ValueError):
            generate_requests(5, catalogue=[])


class TestStreamShape:
    def test_mixes_all_three_kinds(self):
        kinds = {request.kind for request in generate_requests(200, seed=0)}
        assert kinds == {"build", "stretch-query", "distance-query"}

    def test_every_request_targets_a_catalogue_key(self):
        # generate_requests(seed=2) builds its default catalogue with seed 2.
        catalogue = default_catalogue(2)
        keys = {request.graph_key() for request in catalogue}
        for request in generate_requests(100, seed=2):
            assert request.graph_key() in keys

    def test_zipf_skew_concentrates_on_the_head(self):
        catalogue = default_catalogue(0)
        requests = generate_requests(400, seed=0)
        hottest = sum(
            1 for r in requests
            if isinstance(r, BuildRequest) and r == catalogue[0]
            or isinstance(r, StretchQuery) and r.build == catalogue[0]
            or isinstance(r, DistanceQuery) and r.graph_key() == catalogue[0].graph_key()
        )
        # Zipf(s=1.1) over 12 keys puts ~1/3 of the mass on rank 0; even a
        # loose floor proves the skew reached the stream.  (Other catalogue
        # entries share rank 0's graph key, so this undercounts if anything.)
        assert hottest >= 400 * 0.15

    def test_zipf_weights_are_decreasing_and_validated(self):
        weights = zipf_weights(6, 1.1)
        assert weights == sorted(weights, reverse=True)
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestRunLoad:
    def test_closed_loop_answers_everything(self):
        requests = generate_requests(60, seed=1)
        with SpannerService(executor=ThreadPoolExecutor(max_workers=2)) as service:
            report = run_load(service, requests, concurrency=6)
        assert report.requests == 60
        assert report.dropped == 0
        assert report.responses == 60
        assert sum(report.status_counts.values()) == 60
        assert report.failures["count"] == 0

    def test_report_dict_separates_timing_from_counters(self):
        requests = generate_requests(30, seed=1)
        with SpannerService(executor=ThreadPoolExecutor(max_workers=2)) as service:
            report = run_load(service, requests, concurrency=4)
        summary = report.to_dict()
        for key in (
            "requests", "responses", "dropped", "throughput_rps", "latency_ms",
            "hit_rate", "coalesce_rate", "status_counts", "kind_counts",
            "max_batch", "failure_count",
        ):
            assert key in summary
        assert set(summary["latency_ms"]) == {"p50", "p99", "max"}
        assert summary["latency_ms"]["p50"] <= summary["latency_ms"]["p99"]

    def test_concurrency_validation(self):
        with SpannerService(executor=ThreadPoolExecutor(max_workers=1)) as service:
            with pytest.raises(ValueError):
                run_load(service, [], concurrency=0)

    def test_empty_report_rates_are_zero(self):
        report = LoadReport(requests=0, elapsed_seconds=0.0)
        assert report.hit_rate == 0.0
        assert report.coalesce_rate == 0.0
        assert report.to_dict()["throughput_rps"] == 0.0
