"""Tests for the serving tier's request broker (:mod:`repro.serve.service`).

Pool-backed paths run on an injected ``ThreadPoolExecutor`` so the tests stay
fast (no process spawn); the task functions are pure, so the payloads are
identical either way.  The real ``ProcessPoolExecutor`` path is covered by the
``repro serve`` CLI test and the committed load benchmark.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor

import pytest

from repro import algorithms
from repro.analysis.stretch import evaluate_stretch
from repro.experiments import ResultStore, validate_failure_manifest
from repro.experiments.pipeline import canonicalize_payload
from repro.experiments.registry import canonical_json
from repro.graphs import make_workload
from repro.serve import (
    BuildRequest,
    DistanceQuery,
    SpannerService,
    StretchQuery,
    default_catalogue,
    generate_requests,
)


BUILD = BuildRequest.create("new-centralized", family="gnp", size=48, seed=3)


def _service(**kwargs):
    kwargs.setdefault("executor", ThreadPoolExecutor(max_workers=2))
    return SpannerService(**kwargs)


class StalledExecutor:
    """Executor stub whose futures never complete (backpressure/timeout tests)."""

    def __init__(self):
        self.futures = []

    def submit(self, *args, **kwargs):
        future = Future()
        self.futures.append(future)
        return future


class TestBuildPath:
    def test_miss_then_hit(self):
        service = _service()
        first = service.resolve(service.submit(BUILD))
        second = service.resolve(service.submit(BUILD))
        assert first.status == "computed"
        assert second.status == "hit"
        assert second.provenance["source"] == "memory"
        assert first.payload == second.payload
        assert service.stats["pool_submissions"] == 1

    def test_payload_matches_direct_build(self):
        service = _service()
        response = service.resolve(service.submit(BUILD))
        graph = make_workload(BUILD.family, BUILD.size, seed=BUILD.seed)
        run = algorithms.build(BUILD.algorithm, graph, seed=BUILD.seed)
        assert response.payload == canonicalize_payload(run.to_dict())

    def test_identical_inflight_builds_coalesce_to_one_computation(self):
        service = _service()
        tickets = [service.submit(BUILD) for _ in range(4)]
        responses = [service.resolve(ticket) for ticket in tickets]
        statuses = [response.status for response in responses]
        assert statuses.count("computed") == 1
        assert statuses.count("coalesced") == 3
        assert service.stats["pool_submissions"] == 1
        payloads = {canonical_json(response.payload) for response in responses}
        assert len(payloads) == 1

    def test_provenance_rides_outside_the_payload(self):
        service = _service()
        response = service.resolve(service.submit(BUILD))
        for field in ("status", "kind", "source", "batch_size", "queue_seconds", "compute_seconds"):
            assert field in response.provenance
            assert field not in ("",) and field not in response.payload
        assert response.provenance["kind"] == "build"

    def test_store_layer_survives_a_fresh_service(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with _service(store=store) as service:
            first = service.resolve(service.submit(BUILD))
        with _service(store=ResultStore(tmp_path / "store")) as fresh:
            second = fresh.resolve(fresh.submit(BUILD))
            assert second.status == "hit"
            assert second.provenance["source"] == "store"
            assert fresh.stats["pool_submissions"] == 0
        assert first.payload == second.payload

    def test_failed_build_is_typed_and_quarantined(self):
        service = _service()
        bogus = BuildRequest.create("no-such-algorithm", family="gnp", size=32, seed=0)
        response = service.resolve(service.submit(bogus))
        assert response.status == "failed"
        assert response.payload is None
        assert not response.ok
        manifest = service.failure_manifest()
        validate_failure_manifest(manifest)
        assert manifest["count"] == 1
        assert service.stats["failed"] == 1


class TestQueries:
    def test_stretch_payload_matches_direct_evaluation(self):
        service = _service()
        query = StretchQuery(BUILD, num_pairs=50, pair_seed=1)
        response = service.resolve(service.submit(query))
        assert response.status == "computed"
        graph = make_workload(BUILD.family, BUILD.size, seed=BUILD.seed)
        run = algorithms.build(BUILD.algorithm, graph, seed=BUILD.seed)
        # n = 48 <= 60: evaluate_run_stretch's exhaustive branch.
        report = evaluate_stretch(graph, run.spanner, guarantee=run.effective_guarantee())
        assert response.payload == canonicalize_payload(report.to_dict())

    def test_repeated_stretch_query_hits_the_memo(self):
        service = _service()
        query = StretchQuery(BUILD, num_pairs=50, pair_seed=1)
        first = service.resolve(service.submit(query))
        second = service.resolve(service.submit(query))
        assert first.status == "computed"
        assert second.status == "hit"
        assert first.payload == second.payload

    def test_stretch_without_warm_build_waits_on_the_dispatch(self):
        service = _service()
        query = StretchQuery(BUILD, num_pairs=50, pair_seed=0)
        response = service.resolve(service.submit(query))
        assert response.status == "computed"
        assert service.stats["pool_submissions"] == 1
        # The build it forced is now warm.
        assert service.resolve(service.submit(BUILD)).status == "hit"

    def test_distance_query_is_exact(self):
        service = _service()
        pairs = ((0, 1), (0, 47), (5, 5))
        query = DistanceQuery.create(BUILD.family, BUILD.size, BUILD.seed, pairs)
        response = service.resolve(service.submit(query))
        graph = make_workload(BUILD.family, BUILD.size, seed=BUILD.seed)
        expected = [graph.distance_cache().vector(u)[v] for u, v in pairs]
        assert response.payload["distances"] == expected
        assert response.payload["pairs"] == [[u, v] for u, v in pairs]

    def test_distance_query_turns_warm_after_first_sweep(self):
        service = _service()
        query = DistanceQuery.create(BUILD.family, BUILD.size, BUILD.seed, ((2, 9),))
        first = service.resolve(service.submit(query))
        second = service.resolve(service.submit(query))
        assert first.status == "computed"
        assert second.status == "hit"
        assert second.provenance["source"] == "distance-cache"
        assert first.payload == second.payload

    def test_queries_batch_against_one_snapshot(self):
        service = _service()
        service.resolve(service.submit(BUILD))  # warm the snapshot
        queries = [StretchQuery(BUILD, num_pairs=40, pair_seed=s) for s in range(3)]
        responses = service.serve(queries)
        assert all(response.ok for response in responses)
        assert {response.provenance["batch_size"] for response in responses} == {3}
        assert service.stats["max_batch"] >= 3
        assert service.stats["batches"] >= 1

    def test_identical_queries_in_one_batch_coalesce(self):
        service = _service()
        service.resolve(service.submit(BUILD))
        query = StretchQuery(BUILD, num_pairs=40, pair_seed=0)
        responses = service.serve([query, query, query])
        statuses = [response.status for response in responses]
        assert statuses.count("computed") == 1
        assert statuses.count("coalesced") == 2
        assert len({canonical_json(r.payload) for r in responses}) == 1


class TestBackpressureAndTimeouts:
    def test_admission_queue_rejects_beyond_the_limit(self):
        service = SpannerService(executor=StalledExecutor(), queue_limit=2)
        streams = [
            BuildRequest.create("new-centralized", family="gnp", size=32, seed=s)
            for s in range(3)
        ]
        tickets = [service.submit(request) for request in streams]
        rejected = service.resolve(tickets[2])
        assert rejected.status == "rejected"
        assert rejected.payload is None
        assert "Backpressure" in rejected.error
        manifest = service.failure_manifest()
        validate_failure_manifest(manifest)
        assert manifest["count"] == 1
        assert manifest["failures"][0]["error"].startswith("Backpressure")
        assert service.stats["rejected"] == 1

    def test_rejection_frees_no_slots_and_resolution_does(self):
        executor = StalledExecutor()
        service = SpannerService(executor=executor, queue_limit=1)
        first = service.submit(BUILD)
        second = service.submit(
            BuildRequest.create("new-centralized", family="gnp", size=32, seed=9)
        )
        assert service.resolve(second).status == "rejected"
        # Complete the stalled build; resolving it frees its admission slot.
        from repro.serve import tasks as serve_tasks

        executor.futures[0].set_result(
            (serve_tasks.build_task(BUILD.task_params(), BUILD.seed), 0.0)
        )
        assert service.resolve(first).status == "computed"
        third = service.submit(
            BuildRequest.create("new-centralized", family="gnp", size=32, seed=9)
        )
        assert third.response is None or third.response.status != "rejected"

    def test_request_timeout_is_typed_and_quarantined(self):
        service = SpannerService(executor=StalledExecutor(), request_timeout=0.05)
        response = service.resolve(service.submit(BUILD))
        assert response.status == "timeout"
        assert response.payload is None
        assert "TaskTimeout" in response.error
        manifest = service.failure_manifest()
        validate_failure_manifest(manifest)
        assert manifest["count"] == 1
        assert service.stats["timeout"] == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SpannerService(workers=0)
        with pytest.raises(ValueError):
            SpannerService(queue_limit=0)
        with pytest.raises(ValueError):
            SpannerService(request_timeout=0)
        with pytest.raises(ValueError):
            SpannerService(max_warm_entries=0)


class TestDeterminism:
    """Served payloads are pure functions of (request, seed)."""

    def _payload_log(self, requests, **service_kwargs):
        with _service(**service_kwargs) as service:
            responses = service.serve(requests)
        assert all(response.ok for response in responses)
        return [canonical_json(response.payload) for response in responses]

    def test_payloads_identical_across_concurrency_and_cache_state(self):
        requests = generate_requests(40, seed=5)
        serial = self._payload_log(requests, executor=ThreadPoolExecutor(max_workers=1))
        wide = self._payload_log(requests, executor=ThreadPoolExecutor(max_workers=4))
        assert serial == wide

    def test_control_plane_is_deterministic_for_a_fixed_stream(self):
        requests = generate_requests(40, seed=5)

        def statuses():
            with _service() as service:
                return [response.status for response in service.serve(requests)]

        assert statuses() == statuses()


class TestCatalogue:
    def test_default_catalogue_algorithms_are_registered(self):
        for request in default_catalogue():
            assert request.algorithm in algorithms.algorithm_names()

    def test_default_catalogue_rejects_inexact_families(self):
        with pytest.raises(ValueError):
            default_catalogue(families=("grid",))
