"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_argument_parser, main
from repro.graphs import gnp_random_graph, read_edge_list, write_edge_list


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_argument_parser().parse_args([])


def test_build_generated_workload(capsys):
    exit_code = main(["build", "--family", "gnp", "--size", "60", "--seed", "1", "--internal", "--epsilon", "0.25"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "spanner:" in output
    assert "per-phase statistics" in output


def test_build_with_verification(capsys):
    exit_code = main(
        ["build", "--family", "planted", "--size", "60", "--verify", "--internal", "--epsilon", "0.25", "--sample-pairs", "50"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "all passed" in output
    assert "guarantee satisfied: True" in output


def test_build_from_file_and_write_output(tmp_path, capsys):
    graph = gnp_random_graph(40, 0.1, seed=2)
    input_path = tmp_path / "in.txt"
    output_path = tmp_path / "out.txt"
    write_edge_list(graph, input_path)
    exit_code = main(["build", "--input", str(input_path), "--output", str(output_path), "--internal", "--epsilon", "0.25"])
    assert exit_code == 0
    spanner = read_edge_list(output_path)
    assert spanner.is_subgraph_of(graph)


def test_build_with_registered_baseline_algorithm(capsys):
    exit_code = main(
        ["build", "--algorithm", "greedy", "--param", "stretch=5",
         "--family", "grid", "--size", "49", "--verify"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "algorithm: greedy" in output
    assert "guarantee: d_H <= 5" in output
    assert "guarantee satisfied: True" in output


def test_build_distributed_via_algorithm_flag(capsys):
    exit_code = main(
        ["build", "--algorithm", "new-distributed", "--family", "gnp",
         "--size", "50", "--seed", "1", "--internal", "--epsilon", "0.25"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "engine: distributed" in output
    assert "per-phase statistics" in output


def test_build_unknown_algorithm_errors(capsys):
    assert main(["build", "--algorithm", "no-such-algorithm"]) == 2
    assert "unknown algorithm" in capsys.readouterr().err


def test_build_unknown_param_errors(capsys):
    assert main(["build", "--algorithm", "greedy", "--param", "epsilon=0.5"]) == 2
    assert "no parameters" in capsys.readouterr().err


def test_algorithms_list_shows_registry(capsys):
    assert main(["algorithms", "list"]) == 0
    output = capsys.readouterr().out
    for name in ("new-centralized", "new-distributed", "elkin-neiman-2017",
                 "elkin-peleg-2001", "elkin05-surrogate", "baswana-sen", "greedy"):
        assert name in output


def test_algorithms_list_tag_filter_and_json(capsys):
    assert main(["algorithms", "list", "--tag", "multiplicative", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert {entry["name"] for entry in data} == {"baswana-sen", "greedy"}
    assert data[0]["params"], "parameter schemas must be listed"


def test_algorithms_list_unknown_tag(capsys):
    assert main(["algorithms", "list", "--tag", "no-such-tag"]) == 2


def test_algorithms_list_json_reports_capabilities_and_provenance(capsys):
    """Every JSON entry carries the incremental flag and capacity provenance."""
    assert main(["algorithms", "list", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    by_name = {entry["name"] for entry in data}
    assert {"elkin-mst-2017", "elkin-matar-linear",
            "elkin-neiman-sparse", "eest-low-stretch-tree"} <= by_name
    for entry in data:
        assert isinstance(entry["supports_incremental"], bool)
        assert entry["guarantee_kind"] in ("stretch", "exact-mst", "average-stretch")
        assert entry["capacity_source"] in ("measured", "fallback")
        if entry["capacity_source"] == "measured":
            assert "kernel_backend" in entry and "budget_seconds" in entry


def test_build_survey_siblings_by_name(capsys):
    """Each PR-10 registration is CLI-buildable with verification."""
    for name in ("elkin-mst-2017", "eest-low-stretch-tree"):
        assert main(["build", "--algorithm", name, "--family", "gnp",
                     "--size", "30", "--seed", "2", "--verify"]) == 0
        assert f"algorithm: {name}" in capsys.readouterr().out


def test_params_command_outputs_json(capsys):
    exit_code = main(["params", "--epsilon", "0.25", "--kappa", "3", "--rho", "0.34", "--internal", "--size", "500"])
    assert exit_code == 0
    data = json.loads(capsys.readouterr().out)
    assert data["kappa"] == 3
    assert "radius_bounds" in data
    assert "round_bound" in data


def test_experiment_unknown_name(capsys):
    assert main(["experiment", "no-such-experiment"]) == 2


def test_experiment_figure_runs_and_saves_json(tmp_path, capsys):
    out = tmp_path / "fig1.json"
    exit_code = main(["experiment", "figure1", "--json", str(out)])
    assert exit_code == 0
    data = json.loads(out.read_text())
    assert data["name"] == "figure1-superclustering"
    assert all(data["checks"].values())


def test_experiment_scaling_and_ablation_runnable_by_name(capsys):
    # These were missing from the old hardwired CLI registry.
    exit_code = main(["experiment", "ablation-kappa"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "== ablation-kappa ==" in output


def test_suite_list_shows_all_scenarios(capsys):
    assert main(["suite", "list"]) == 0
    output = capsys.readouterr().out
    for name in ("table1", "table2", "scaling", "ablation-epsilon", "figure8",
                 "family-small-world"):
        assert name in output


def test_suite_list_filter(capsys):
    assert main(["suite", "list", "--filter", "ablation"]) == 0
    output = capsys.readouterr().out
    assert "ablation-epsilon" in output
    assert "figure1" not in output


def test_suite_list_unknown_filter(capsys):
    assert main(["suite", "list", "--filter", "no-such-tag"]) == 2


def test_resume_without_store_is_an_error(capsys):
    assert main(["suite", "run", "--resume"]) == 2
    assert "--store" in capsys.readouterr().err
    assert main(["experiment", "figure1", "--resume"]) == 2


def test_suite_run_with_store_and_resume(tmp_path, capsys):
    store = tmp_path / "store"
    records = tmp_path / "records"
    manifest_path = tmp_path / "manifest.json"
    exit_code = main([
        "suite", "run", "--filter", "ablation", "--jobs", "2",
        "--store", str(store), "--records", str(records),
    ])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "ablation-epsilon" in output
    assert "all ok" in output
    assert (records / "ablation-epsilon.json").exists()

    exit_code = main([
        "suite", "run", "--filter", "ablation", "--store", str(store),
        "--resume", "--manifest", str(manifest_path),
    ])
    assert exit_code == 0
    manifest = json.loads(manifest_path.read_text())
    assert manifest["total_computed"] == 0
    assert manifest["total_cache_hits"] == manifest["total_tasks"]


def test_capacity_command_emits_ladder(tmp_path, capsys):
    ladder_path = tmp_path / "ladder.json"
    exit_code = main([
        "capacity", "--budget", "0.3", "--algorithm", "new-centralized",
        "--start-n", "32", "--max-n", "64", "--json", str(ladder_path),
    ])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "capacity ladder" in output
    assert "new-centralized" in output
    ladder = json.loads(ladder_path.read_text())
    assert ladder["schema"] == "capacity-ladder/v1"
    entry = ladder["entries"]["new-centralized"]
    assert entry["max_practical_vertices"] >= 32
    assert entry["probes"]


def test_capacity_command_rejects_bad_input(capsys):
    assert main(["capacity", "--budget", "0"]) == 2
    assert main(["capacity", "--algorithm", "no-such-algo"]) == 2
    # --update-defaults needs the full ladder, not a filtered one.
    assert (
        main([
            "capacity", "--budget", "0.2", "--algorithm", "greedy",
            "--start-n", "32", "--max-n", "32", "--update-defaults",
        ])
        == 2
    )


def test_serve_command_runs_the_load_and_checks(tmp_path, capsys):
    report_path = tmp_path / "load.json"
    failures_path = tmp_path / "failures.json"
    exit_code = main([
        "serve", "--requests", "120", "--concurrency", "6", "--workers", "2",
        "--json", str(report_path), "--failures", str(failures_path), "--check",
    ])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "120 requests" in output
    assert "responses by status" in output
    assert "serve check: OK" in output
    report = json.loads(report_path.read_text())
    assert report["requests"] == 120
    assert report["dropped"] == 0
    assert report["status_counts"].get("hit", 0) > 0
    assert report["status_counts"].get("coalesced", 0) > 0
    assert set(report["latency_ms"]) == {"p50", "p99", "max"}
    failures = json.loads(failures_path.read_text())
    assert failures["schema"] == "repro-failure-manifest/v1"
    assert failures["count"] == 0


def test_serve_command_persists_to_a_store(tmp_path, capsys):
    store = tmp_path / "store"
    assert main([
        "serve", "--requests", "40", "--concurrency", "4", "--workers", "2",
        "--store", str(store),
    ]) == 0
    capsys.readouterr()
    assert any(store.glob("serve-build/*.json"))
    assert main(["store", "audit", "--store", str(store)]) == 0
    output = capsys.readouterr().out
    assert "0 corrupt" in output


def test_serve_command_rejects_bad_input(capsys):
    assert main(["serve", "--requests", "0"]) == 2
    assert main(["serve", "--concurrency", "0"]) == 2
    assert main(["serve", "--workers", "0"]) == 2
    assert main(["serve", "--queue-limit", "0"]) == 2
    assert main(["serve", "--request-timeout", "0"]) == 2


def test_store_audit_flags_corruption(tmp_path, capsys):
    from repro.experiments import ResultStore

    store_dir = tmp_path / "store"
    store = ResultStore(store_dir)
    good = store.put("s", "1" * 32, {"v": 1}, params={}, seed=0,
                     workload_fingerprint="", version="1")
    bad = store.put("s", "2" * 32, {"v": 2}, params={}, seed=0,
                    workload_fingerprint="", version="1")
    bad.write_text("garbage", encoding="utf-8")
    assert main(["store", "audit", "--store", str(store_dir)]) == 1
    output = capsys.readouterr().out
    assert "1 corrupt" in output
    assert "CORRUPT s/" + "2" * 32 in output
    assert good.exists() and not bad.exists()
    # The corrupt entry was invalidated: a second audit is clean.
    assert main(["store", "audit", "--store", str(store_dir)]) == 0


def test_store_audit_missing_directory(capsys):
    assert main(["store", "audit", "--store", "/no/such/store-dir"]) == 2
    assert "no result store" in capsys.readouterr().err
