"""Tests for broadcast / convergecast primitives."""

from __future__ import annotations

from repro.congest import Simulator
from repro.graphs import Graph, cycle_graph, grid_graph, path_graph, star_graph
from repro.primitives import count_vertices, run_broadcast, run_convergecast


def test_broadcast_reaches_component_only():
    graph = Graph(5, [(0, 1), (1, 2)])
    sim = Simulator(graph)
    result = run_broadcast(sim, 0, value=42)
    assert result.received == [True, True, True, False, False]


def test_broadcast_value_propagates(star_graph_fixture=None):
    graph = star_graph(4)
    sim = Simulator(graph)
    result = run_broadcast(sim, 2, value="hello")
    assert all(result.received)


def test_broadcast_invalid_source():
    import pytest

    sim = Simulator(path_graph(3))
    with pytest.raises(ValueError):
        run_broadcast(sim, 7, value=1)


def test_convergecast_sum(grid_5x5):
    sim = Simulator(grid_5x5)
    result = run_convergecast(sim, root=0, local_values=[1] * 25, combine=lambda a, b: a + b)
    assert result.value == 25


def test_convergecast_max(cycle_8):
    sim = Simulator(cycle_8)
    values = list(range(8))
    result = run_convergecast(sim, root=3, local_values=values, combine=max)
    assert result.value == 7


def test_convergecast_only_counts_roots_component():
    graph = Graph(6, [(0, 1), (1, 2), (3, 4)])
    sim = Simulator(graph)
    result = run_convergecast(sim, root=0, local_values=[1] * 6, combine=lambda a, b: a + b)
    assert result.value == 3


def test_convergecast_requires_value_per_vertex():
    import pytest

    sim = Simulator(path_graph(4))
    with pytest.raises(ValueError):
        run_convergecast(sim, 0, [1, 2], combine=max)


def test_count_vertices_helper(grid_5x5):
    sim = Simulator(grid_5x5)
    assert count_vertices(sim, 12) == 25


def test_count_vertices_on_disconnected_graph():
    graph = Graph(7, [(0, 1), (2, 3), (3, 4)])
    sim = Simulator(graph)
    assert count_vertices(sim, 2) == 3
    sim2 = Simulator(graph)
    assert count_vertices(sim2, 6) == 1
