"""Tests for the distributed multi-source BFS forest."""

from __future__ import annotations

import pytest

from repro.congest import Simulator
from repro.graphs import Graph, bfs_distances, cycle_graph, grid_graph, multi_source_bfs, path_graph
from repro.primitives import forest_membership, run_bfs_forest


def simulator_for(graph):
    return Simulator(graph, strict_congestion=True)


class TestSingleSource:
    def test_forest_matches_bfs_distances(self, grid_5x5):
        sim = simulator_for(grid_5x5)
        forest = run_bfs_forest(sim, [0], depth=30)
        reference = bfs_distances(grid_5x5, 0)
        for v in range(25):
            assert forest.dist[v] == reference[v]
            assert forest.root[v] == 0

    def test_parents_are_edges_one_level_up(self, grid_5x5):
        sim = simulator_for(grid_5x5)
        forest = run_bfs_forest(sim, [0], depth=30)
        for v in range(1, 25):
            parent = forest.parent[v]
            assert grid_5x5.has_edge(v, parent)
            assert forest.dist[parent] == forest.dist[v] - 1

    def test_depth_limit_respected(self, path_6):
        sim = simulator_for(path_6)
        forest = run_bfs_forest(sim, [0], depth=2)
        assert forest.spanned_vertices() == [0, 1, 2]
        assert forest.dist[2] == 2
        assert not forest.spanned(3)

    def test_depth_zero_spans_only_sources(self, cycle_8):
        sim = simulator_for(cycle_8)
        forest = run_bfs_forest(sim, [3], depth=0)
        assert forest.spanned_vertices() == [3]

    def test_path_to_root(self, grid_5x5):
        sim = simulator_for(grid_5x5)
        forest = run_bfs_forest(sim, [0], depth=30)
        path = forest.tree_path_to_root(24)
        assert path[0] == 24 and path[-1] == 0
        assert len(path) == forest.dist[24] + 1

    def test_path_to_root_unspanned_raises(self, path_6):
        sim = simulator_for(path_6)
        forest = run_bfs_forest(sim, [0], depth=1)
        with pytest.raises(ValueError):
            forest.tree_path_to_root(5)


class TestMultiSource:
    def test_every_vertex_adopts_nearest_source(self):
        graph = path_graph(9)
        sim = simulator_for(graph)
        forest = run_bfs_forest(sim, [0, 8], depth=10)
        assert forest.root[:4] == [0, 0, 0, 0]
        assert forest.root[5:] == [8, 8, 8, 8]
        # the middle vertex ties; the smaller root wins deterministically
        assert forest.root[4] == 0

    def test_membership_grouping(self):
        graph = path_graph(9)
        sim = simulator_for(graph)
        forest = run_bfs_forest(sim, [0, 8], depth=10)
        members = forest_membership(forest)
        assert members[0] == [0, 1, 2, 3, 4]
        assert members[8] == [5, 6, 7, 8]

    def test_matches_centralized_multi_source(self, community_graph):
        sim = simulator_for(community_graph)
        sources = [0, 15, 33]
        forest = run_bfs_forest(sim, sources, depth=4)
        reference = multi_source_bfs(community_graph, sources, max_depth=4)
        for v in range(community_graph.num_vertices):
            assert forest.dist[v] == reference.dist[v]

    def test_no_congestion_violation(self, community_graph):
        sim = simulator_for(community_graph)
        forest = run_bfs_forest(sim, [0, 1, 2], depth=10)
        assert forest.run.max_edge_congestion <= 1

    def test_nominal_rounds_equal_depth(self, grid_5x5):
        sim = simulator_for(grid_5x5)
        forest = run_bfs_forest(sim, [0], depth=17)
        assert forest.nominal_rounds == 17
        assert sim.ledger.nominal_rounds == 17

    def test_invalid_source_rejected(self, path_6):
        sim = simulator_for(path_6)
        with pytest.raises(ValueError):
            run_bfs_forest(sim, [99], depth=2)

    def test_negative_depth_rejected(self, path_6):
        sim = simulator_for(path_6)
        with pytest.raises(ValueError):
            run_bfs_forest(sim, [0], depth=-1)
