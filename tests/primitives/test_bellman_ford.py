"""Tests for the distributed depth-bounded Bellman-Ford exploration."""

from __future__ import annotations

import pytest

from repro.congest import Simulator
from repro.graphs import bfs_distances, cycle_graph, gnp_random_graph, grid_graph, path_graph
from repro.primitives import run_bellman_ford, run_bfs_forest


def test_matches_bfs_on_single_source(grid_5x5):
    sim = Simulator(grid_5x5)
    result = run_bellman_ford(sim, [0], depth=20)
    reference = bfs_distances(grid_5x5, 0)
    for v in range(25):
        assert result.dist[v] == reference[v]


def test_depth_bound_respected(path_6):
    sim = Simulator(path_6)
    result = run_bellman_ford(sim, [0], depth=3)
    assert result.dist[3] == 3
    assert result.dist[4] is None


def test_multi_source_assigns_nearest_source():
    graph = path_graph(9)
    sim = Simulator(graph)
    result = run_bellman_ford(sim, [0, 8], depth=10)
    assert result.source[1] == 0
    assert result.source[7] == 8


def test_agrees_with_bfs_forest_distances(medium_random):
    sources = [0, 5, 11]
    sim1 = Simulator(medium_random)
    bf = run_bellman_ford(sim1, sources, depth=6)
    sim2 = Simulator(medium_random)
    forest = run_bfs_forest(sim2, sources, depth=6)
    assert bf.dist == forest.dist


def test_parents_are_edges(cycle_8):
    sim = Simulator(cycle_8)
    result = run_bellman_ford(sim, [0], depth=8)
    for v in range(8):
        if result.parent[v] is not None:
            assert cycle_8.has_edge(v, result.parent[v])


def test_invalid_inputs_rejected(path_6):
    sim = Simulator(path_6)
    with pytest.raises(ValueError):
        run_bellman_ford(sim, [99], depth=1)
    with pytest.raises(ValueError):
        run_bellman_ford(sim, [0], depth=-2)


def test_nominal_rounds_are_depth(grid_5x5):
    sim = Simulator(grid_5x5)
    result = run_bellman_ford(sim, [0], depth=12)
    assert result.nominal_rounds == 12
    assert sim.ledger.nominal_rounds == 12
