"""Tests for the path trace-back protocols."""

from __future__ import annotations

import pytest

from repro.congest import Simulator
from repro.graphs import Graph, bfs_distances, grid_graph, path_graph
from repro.primitives import (
    centralized_forest_markup,
    centralized_traceback,
    run_bfs_forest,
    run_bounded_exploration,
    run_forest_path_markup,
    run_traceback,
)


def spanner_from_edges(graph, edges):
    return graph.subgraph_from_edges(edges)


class TestExplorationTraceback:
    def setup_exploration(self, graph, centers, depth, cap):
        sim = Simulator(graph, strict_congestion=True)
        exploration = run_bounded_exploration(sim, centers, depth, cap)
        return sim, exploration

    def test_traced_edges_form_shortest_paths(self, grid_5x5):
        centers = [0, 24]
        sim, exploration = self.setup_exploration(grid_5x5, centers, depth=10, cap=3)
        requests = {0: [24]}
        result = run_traceback(sim, exploration, requests)
        spanner = spanner_from_edges(grid_5x5, result.edges)
        assert bfs_distances(spanner, 0).get(24) == bfs_distances(grid_5x5, 0)[24]

    def test_matches_centralized_traceback_lengths(self, grid_5x5):
        centers = [0, 12, 24]
        sim, exploration = self.setup_exploration(grid_5x5, centers, depth=10, cap=3)
        requests = {0: [12, 24], 12: [24]}
        distributed = run_traceback(sim, exploration, requests)
        centralized = centralized_traceback(exploration, requests)
        # Both produce shortest paths for every requested pair (the actual
        # edge sets may differ by tie-breaking).
        for edges in (distributed.edges, centralized):
            spanner = spanner_from_edges(grid_5x5, edges)
            for source, targets in requests.items():
                source_dist = bfs_distances(spanner, source)
                for target in targets:
                    assert source_dist.get(target) == bfs_distances(grid_5x5, source)[target]

    def test_unknown_targets_skipped(self, path_6):
        sim, exploration = self.setup_exploration(path_6, [0], depth=1, cap=2)
        result = run_traceback(sim, exploration, {5: [0]})
        assert result.edges == set()

    def test_many_requests_respect_congestion(self, community_graph):
        n = community_graph.num_vertices
        centers = list(range(n))
        sim, exploration = self.setup_exploration(community_graph, centers, depth=1, cap=4)
        requests = {
            v: [c for c in exploration.known[v] if c != v]
            for v in range(n)
            if v not in exploration.popular
        }
        result = run_traceback(sim, exploration, requests)
        assert sim.ledger.max_edge_congestion <= 1
        assert all(community_graph.has_edge(u, v) for u, v in result.edges)

    def test_self_requests_are_ignored(self, path_6):
        sim, exploration = self.setup_exploration(path_6, [2], depth=2, cap=2)
        result = run_traceback(sim, exploration, {2: [2]})
        assert result.edges == set()


class TestForestMarkup:
    def test_markup_adds_exactly_the_tree_paths(self, grid_5x5):
        sim = Simulator(grid_5x5, strict_congestion=True)
        forest = run_bfs_forest(sim, [0], depth=10)
        targets = [24, 20, 4]
        distributed = run_forest_path_markup(sim, forest, targets)
        centralized = centralized_forest_markup(forest, targets)
        assert distributed.edges == centralized

    def test_markup_paths_reach_roots(self, community_graph):
        sim = Simulator(community_graph, strict_congestion=True)
        sources = [0, 30]
        forest = run_bfs_forest(sim, sources, depth=6)
        targets = [v for v in forest.spanned_vertices() if v not in sources][:10]
        result = run_forest_path_markup(sim, forest, targets)
        spanner = spanner_from_edges(community_graph, result.edges)
        for target in targets:
            root = forest.root[target]
            assert bfs_distances(spanner, target).get(root) is not None

    def test_markup_unspanned_target_rejected(self, path_6):
        sim = Simulator(path_6, strict_congestion=True)
        forest = run_bfs_forest(sim, [0], depth=1)
        with pytest.raises(ValueError):
            run_forest_path_markup(sim, forest, [5])

    def test_markup_out_of_range_target_rejected(self, path_6):
        sim = Simulator(path_6, strict_congestion=True)
        forest = run_bfs_forest(sim, [0], depth=5)
        with pytest.raises(ValueError):
            run_forest_path_markup(sim, forest, [77])

    def test_markup_respects_bandwidth(self, grid_5x5):
        sim = Simulator(grid_5x5, strict_congestion=True)
        forest = run_bfs_forest(sim, [12], depth=10)
        result = run_forest_path_markup(sim, forest, list(range(25)))
        assert sim.ledger.max_edge_congestion <= 1
        # all 24 non-root vertices mark their parent edge exactly once
        assert len(result.edges) == 24
