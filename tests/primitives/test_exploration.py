"""Tests for Algorithm 1 (bounded multi-source exploration / popular-cluster detection)."""

from __future__ import annotations

import pytest

from repro.congest import Simulator
from repro.graphs import (
    bfs_distances,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.primitives import centralized_bounded_exploration, run_bounded_exploration


def run_both(graph, centers, depth, cap):
    """Run the distributed and the centralized variants."""
    sim = Simulator(graph, strict_congestion=True)
    distributed = run_bounded_exploration(sim, centers, depth, cap)
    centralized = centralized_bounded_exploration(graph, centers, depth, cap)
    return distributed, centralized


class TestPopularityDetection:
    def test_star_center_is_popular(self):
        graph = star_graph(6)
        distributed, centralized = run_both(graph, range(7), depth=1, cap=3)
        assert 0 in distributed.popular
        assert distributed.popular == centralized.popular
        # leaves see only the hub within distance 1
        assert all(leaf not in distributed.popular for leaf in range(1, 7))

    def test_popular_matches_true_neighbourhood_counts(self):
        graph = gnp_random_graph(50, 0.1, seed=3)
        centers = list(range(50))
        depth, cap = 2, 6
        distributed, _ = run_both(graph, centers, depth, cap)
        for center in centers:
            true_count = len(
                [v for v, d in bfs_distances(graph, center, max_depth=depth).items() if v != center]
            )
            assert (center in distributed.popular) == (true_count >= cap)

    def test_no_popular_when_cap_exceeds_graph(self):
        graph = cycle_graph(8)
        distributed, _ = run_both(graph, range(8), depth=2, cap=10)
        assert distributed.popular == set()

    def test_popular_sets_agree_between_engines(self, community_graph):
        distributed, centralized = run_both(
            community_graph, range(community_graph.num_vertices), depth=1, cap=4
        )
        assert distributed.popular == centralized.popular


class TestKnowledgeGuarantee:
    def test_non_popular_centers_know_everything_within_depth(self):
        """Theorem 2.1(2): non-popular centers learn all centers within delta, exactly."""
        graph = gnp_random_graph(40, 0.08, seed=5)
        centers = list(range(40))
        depth, cap = 3, 5
        distributed, _ = run_both(graph, centers, depth, cap)
        for center in centers:
            if center in distributed.popular:
                continue
            true_near = {
                v: d
                for v, d in bfs_distances(graph, center, max_depth=depth).items()
                if v in set(centers)
            }
            assert set(distributed.known[center].keys()) == set(true_near.keys())
            for other, entry in distributed.known[center].items():
                assert entry.distance == true_near[other]

    def test_recorded_distances_never_below_true_distance(self):
        graph = gnp_random_graph(40, 0.1, seed=9)
        centers = list(range(0, 40, 2))
        sim = Simulator(graph)
        result = run_bounded_exploration(sim, centers, depth=3, cap=4)
        for v in range(40):
            true_dist = bfs_distances(graph, v, max_depth=10)
            for center, entry in result.known[v].items():
                assert entry.distance >= true_dist[center]
                assert entry.distance <= 3

    def test_every_vertex_knows_at_least_min_cap_or_all(self):
        """Lemma A.1 on every vertex, not just centers."""
        graph = grid_graph(6, 6)
        centers = list(range(36))
        depth, cap = 2, 4
        sim = Simulator(graph)
        result = run_bounded_exploration(sim, centers, depth, cap)
        for v in range(36):
            true_count = len(bfs_distances(graph, v, max_depth=depth))
            assert len(result.known[v]) >= min(cap, true_count)

    def test_trace_path_follows_edges_and_has_recorded_length(self):
        graph = grid_graph(5, 5)
        centers = [0, 12, 24]
        sim = Simulator(graph)
        result = run_bounded_exploration(sim, centers, depth=5, cap=3)
        for v in range(25):
            for center, entry in result.known[v].items():
                path = result.trace_path(v, center)
                assert len(path) - 1 == entry.distance
                for a, b in zip(path, path[1:]):
                    assert graph.has_edge(a, b)

    def test_trace_path_unknown_center_raises(self, path_6):
        sim = Simulator(path_6)
        result = run_bounded_exploration(sim, [0], depth=1, cap=2)
        with pytest.raises(ValueError):
            result.trace_path(5, 0)


class TestSchedulingAndAccounting:
    def test_nominal_rounds_formula(self, grid_5x5):
        sim = Simulator(grid_5x5)
        result = run_bounded_exploration(sim, range(25), depth=4, cap=3)
        assert result.nominal_rounds == 1 + 3 * 4
        # The full schedule is charged to the ledger even if the network went
        # quiet early.
        assert sim.ledger.nominal_rounds == result.nominal_rounds

    def test_respects_congestion_budget(self, community_graph):
        sim = Simulator(community_graph, strict_congestion=True)
        run_bounded_exploration(sim, range(community_graph.num_vertices), depth=2, cap=5)
        assert sim.ledger.max_edge_congestion <= 1

    def test_centers_know_themselves_at_distance_zero(self):
        graph = cycle_graph(6)
        _, centralized = run_both(graph, [2, 4], depth=2, cap=2)
        assert centralized.known[2][2].distance == 0
        assert centralized.known[4][4].distance == 0

    def test_empty_center_set(self, path_6):
        sim = Simulator(path_6)
        result = run_bounded_exploration(sim, [], depth=2, cap=2)
        assert result.popular == set()
        assert all(not known for known in result.known)

    def test_invalid_parameters_rejected(self, path_6):
        sim = Simulator(path_6)
        with pytest.raises(ValueError):
            run_bounded_exploration(sim, [0], depth=-1, cap=1)
        with pytest.raises(ValueError):
            run_bounded_exploration(sim, [0], depth=1, cap=0)
        with pytest.raises(ValueError):
            run_bounded_exploration(sim, [77], depth=1, cap=1)

    def test_known_centers_accessor_sorted(self):
        graph = complete_graph(5)
        _, centralized = run_both(graph, range(5), depth=1, cap=10)
        assert centralized.known_centers(0) == [0, 1, 2, 3, 4]
        assert centralized.distance_to(0, 3) == 1
        assert centralized.distance_to(0, 99) is None
