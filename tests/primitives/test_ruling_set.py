"""Tests for the deterministic digit-by-digit ruling set (Theorem 2.2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import Simulator
from repro.graphs import (
    bfs_distances,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
)
from repro.primitives import (
    centralized_ruling_set,
    id_digits,
    run_ruling_set,
    verify_ruling_set,
)


class TestDigits:
    def test_id_digits_base10(self):
        assert id_digits(123, base=10, num_digits=3) == (1, 2, 3)

    def test_id_digits_pads_with_zeros(self):
        assert id_digits(7, base=10, num_digits=3) == (0, 0, 7)

    def test_id_digits_base2(self):
        assert id_digits(5, base=2, num_digits=4) == (0, 1, 0, 1)

    def test_small_base_clamped(self):
        assert id_digits(3, base=1, num_digits=2) == (1, 1)


class TestGuarantees:
    @pytest.mark.parametrize("q,c", [(1, 1), (2, 2), (3, 3), (4, 2)])
    def test_properties_on_random_graph(self, q, c):
        graph = gnp_random_graph(45, 0.08, seed=q * 10 + c)
        candidates = list(range(0, 45, 2))
        result = centralized_ruling_set(graph, candidates, q=q, c=c)
        violations = verify_ruling_set(
            graph, candidates, result.ruling_set, result.separation, result.domination_radius
        )
        assert violations == []

    def test_nonempty_whenever_candidates_exist(self, cycle_8):
        result = centralized_ruling_set(cycle_8, [1, 4, 6], q=2, c=2)
        assert result.ruling_set
        assert result.ruling_set <= {1, 4, 6}

    def test_empty_candidates_give_empty_set(self, path_6):
        result = centralized_ruling_set(path_6, [], q=2, c=2)
        assert result.ruling_set == set()

    def test_far_apart_candidates_all_survive(self):
        graph = path_graph(30)
        candidates = [0, 10, 20, 29]
        result = centralized_ruling_set(graph, candidates, q=3, c=2)
        assert result.ruling_set == set(candidates)

    def test_clique_keeps_exactly_one(self):
        graph = complete_graph(12)
        result = centralized_ruling_set(graph, range(12), q=2, c=2)
        assert len(result.ruling_set) == 1

    def test_separation_exact_on_path(self):
        graph = path_graph(20)
        result = centralized_ruling_set(graph, range(20), q=4, c=2)
        members = sorted(result.ruling_set)
        for a, b in zip(members, members[1:]):
            assert b - a >= 5  # separation q+1


class TestDistributedMatchesCentralized:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_output(self, seed):
        graph = gnp_random_graph(35, 0.1, seed=seed)
        candidates = list(range(0, 35, 3))
        sim = Simulator(graph, strict_congestion=True)
        distributed = run_ruling_set(sim, candidates, q=2, c=2)
        centralized = centralized_ruling_set(graph, candidates, q=2, c=2)
        assert distributed.ruling_set == centralized.ruling_set

    def test_distributed_guarantees(self, community_graph):
        candidates = list(range(0, community_graph.num_vertices, 2))
        sim = Simulator(community_graph, strict_congestion=True)
        result = run_ruling_set(sim, candidates, q=3, c=3)
        assert verify_ruling_set(
            community_graph, candidates, result.ruling_set, result.separation, result.domination_radius
        ) == []

    def test_nominal_rounds_schedule(self, grid_5x5):
        sim = Simulator(grid_5x5)
        result = run_ruling_set(sim, range(0, 25, 2), q=2, c=2)
        base = max(2, math.ceil(25 ** 0.5))
        assert result.nominal_rounds == 2 * base * 2
        assert sim.ledger.nominal_rounds == result.nominal_rounds

    def test_invalid_parameters_rejected(self, path_6):
        sim = Simulator(path_6)
        with pytest.raises(ValueError):
            run_ruling_set(sim, [0], q=0, c=1)
        with pytest.raises(ValueError):
            run_ruling_set(sim, [0], q=1, c=0)
        with pytest.raises(ValueError):
            run_ruling_set(sim, [42], q=1, c=1)


class TestVerifier:
    def test_verifier_flags_non_candidates(self, path_6):
        violations = verify_ruling_set(path_6, [0, 1], {5}, separation=2, domination_radius=2)
        assert any("non-candidates" in v for v in violations)

    def test_verifier_flags_separation_violation(self, path_6):
        violations = verify_ruling_set(path_6, [0, 1, 2], {0, 1}, separation=3, domination_radius=5)
        assert any("distance" in v for v in violations)

    def test_verifier_flags_missing_domination(self, path_6):
        violations = verify_ruling_set(path_6, [0, 5], {0}, separation=2, domination_radius=2)
        assert any("not dominated" in v for v in violations)

    def test_verifier_flags_empty_set_with_candidates(self, path_6):
        violations = verify_ruling_set(path_6, [0], set(), separation=2, domination_radius=2)
        assert violations


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=32),
    p=st.floats(min_value=0.05, max_value=0.4),
    q=st.integers(min_value=1, max_value=4),
    c=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_ruling_set_properties_hypothesis(n, p, q, c, seed):
    """Property-based check of Theorem 2.2 over random graphs and parameters."""
    graph = gnp_random_graph(n, p, seed=seed)
    candidates = [v for v in range(n) if v % 2 == seed % 2]
    result = centralized_ruling_set(graph, candidates, q=q, c=c)
    assert verify_ruling_set(
        graph, candidates, result.ruling_set, result.separation, result.domination_radius
    ) == []
