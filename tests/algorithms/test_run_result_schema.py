"""Regression tests pinning the unified run-result serialization schema.

Before the algorithm registry, ``SpannerResult.to_dict()`` and
``BaselineResult.to_dict()`` drifted apart (different key names for the
guarantee and the edge counts).  Both now emit the single
``repro-run-result/v1`` schema; these tests pin the exact key set so the
schemas cannot drift apart again.
"""

from __future__ import annotations

import json

import pytest

from repro import build, build_spanner, make_parameters
from repro.algorithms import RUN_RESULT_KEYS, RUN_RESULT_SCHEMA
from repro.baselines import build_baswana_sen_spanner, build_greedy_spanner
from repro.graphs import gnp_random_graph

#: The one schema every serialized run must emit, pinned key by key.
PINNED_KEYS = (
    "schema",
    "algorithm",
    "engine",
    "num_vertices",
    "num_graph_edges",
    "num_spanner_edges",
    "nominal_rounds",
    "guarantee",
    "phases",
    "details",
    "ledger",
)


@pytest.fixture(scope="module")
def graph():
    return gnp_random_graph(30, 0.15, seed=4)


@pytest.fixture(scope="module")
def parameters():
    return make_parameters(0.25, 3, 1.0 / 3.0, epsilon_is_internal=True)


def test_pinned_keys_match_declared_constant():
    assert RUN_RESULT_KEYS == PINNED_KEYS


def _assert_unified(data, algorithm):
    assert tuple(data.keys()) == PINNED_KEYS
    assert data["schema"] == RUN_RESULT_SCHEMA
    assert data["algorithm"] == algorithm
    assert data["num_vertices"] == 30
    assert isinstance(data["num_graph_edges"], int)
    assert isinstance(data["num_spanner_edges"], int)
    guarantee = data["guarantee"]
    assert guarantee is None or set(guarantee) == {"multiplicative", "additive"}
    json.dumps(data)  # the whole record must be JSON-safe


def test_spanner_result_emits_unified_schema(graph, parameters):
    result = build_spanner(graph, parameters=parameters)
    data = result.to_dict()
    _assert_unified(data, "new-centralized")
    assert data["engine"] == "centralized"
    assert data["ledger"] is None
    assert len(data["phases"]) == parameters.num_phases
    assert data["details"]["edges_by_step"]["total"] == result.num_edges
    guarantee = parameters.stretch_bound()
    assert data["guarantee"] == {
        "multiplicative": guarantee.multiplicative,
        "additive": guarantee.additive,
    }


def test_distributed_spanner_result_emits_ledger(graph, parameters):
    result = build_spanner(graph, parameters=parameters, engine="distributed")
    data = result.to_dict()
    _assert_unified(data, "new-distributed")
    assert data["ledger"]["nominal_rounds"] == result.nominal_rounds


def test_baseline_result_emits_unified_schema(graph):
    result = build_greedy_spanner(graph, 5)
    data = result.to_dict()
    _assert_unified(data, "greedy")
    assert data["engine"] is None
    assert data["guarantee"] == {"multiplicative": 5.0, "additive": 0.0}
    assert data["details"]["stretch"] == 5


def test_baseline_phase_stats_land_in_phases_key(graph):
    from repro.baselines import build_elkin_neiman_spanner

    parameters = make_parameters(0.25, 3, 1.0 / 3.0, epsilon_is_internal=True)
    result = build_elkin_neiman_spanner(graph, parameters, seed=2)
    data = result.to_dict()
    _assert_unified(data, "elkin-neiman-2017")
    assert data["phases"], "per-phase stats must move from details to phases"
    assert "phases" not in data["details"]


def test_facade_and_legacy_serializations_agree(graph):
    run = build("baswana-sen", graph, kappa=3, seed=7)
    legacy = build_baswana_sen_spanner(graph, 3, seed=7)
    assert run.to_dict() == legacy.to_dict()
