"""Tests for the declarative algorithm registry and the ``build()`` facade."""

from __future__ import annotations

import json

import pytest

from repro import algorithms, build
from repro.algorithms import AlgorithmSpec, ParamSpec, RunResult, get_spec, register, select
from repro.core.parameters import StretchGuarantee
from repro.core.result import SpannerResult
from repro.graphs import gnp_random_graph

EXPECTED_ALGORITHMS = {
    "new-centralized",
    "new-distributed",
    "elkin-neiman-2017",
    "elkin-peleg-2001",
    "elkin05-surrogate",
    "baswana-sen",
    "greedy",
    # PR 10 survey siblings.
    "elkin-mst-2017",
    "elkin-matar-linear",
    "elkin-neiman-sparse",
    "eest-low-stretch-tree",
}


@pytest.fixture(scope="module")
def graph():
    return gnp_random_graph(36, 0.15, seed=3)


class TestBuiltinRegistry:
    def test_every_expected_algorithm_registered(self):
        assert EXPECTED_ALGORITHMS <= set(algorithms.algorithm_names())

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            get_spec("no-such-algorithm")

    def test_select_by_tags(self):
        near_additive = {spec.name for spec in select(tags=("near-additive",))}
        assert near_additive == {
            "new-centralized",
            "new-distributed",
            "elkin-neiman-2017",
            "elkin-peleg-2001",
            "elkin05-surrogate",
            "elkin-matar-linear",
            "elkin-neiman-sparse",
        }
        multiplicative = {spec.name for spec in select(tags=("multiplicative",))}
        assert multiplicative == {"baswana-sen", "greedy"}
        deterministic_congest = {
            spec.name for spec in select(tags=("deterministic", "congest"))
        }
        assert deterministic_congest == {
            "new-distributed",
            "elkin05-surrogate",
            "elkin-mst-2017",
        }
        assert {spec.name for spec in select(tags=("mst",))} == {"elkin-mst-2017"}

    def test_select_engines_sort_first(self):
        names = [spec.name for spec in select()]
        assert names[:2] == ["new-centralized", "new-distributed"]

    def test_select_consults_capability_hints(self):
        # The committed measured ladder (src/repro/algorithms/CAPACITY.json)
        # gives every registered algorithm a finite max_practical_vertices
        # hint; select() must gate on the hints uniformly, whatever their
        # measured values are on the reference machine.
        specs = algorithms.all_specs()
        assert all(spec.max_practical_vertices for spec in specs)
        bounded = min(specs, key=lambda spec: spec.max_practical_vertices)
        cap = bounded.max_practical_vertices
        assert bounded.name in {spec.name for spec in select(max_vertices=cap)}
        assert bounded.name not in {
            spec.name for spec in select(max_vertices=cap + 1)
        }
        # Everything is practical at toy sizes.
        assert {spec.name for spec in select(max_vertices=50)} == {
            spec.name for spec in specs
        }

    def test_measured_hints_come_from_committed_ladder(self):
        # The hand-set fallbacks (greedy 400, distributed 300) must have been
        # replaced by the committed capacity-ladder measurements.
        from repro.algorithms.builtin import (
            MEASURED_CAPACITY_PATH,
            measured_capacity_hints,
        )

        ladder = json.loads(MEASURED_CAPACITY_PATH.read_text(encoding="utf-8"))
        assert ladder["schema"] == "capacity-ladder/v1"
        hints = measured_capacity_hints()
        assert set(hints) == set(ladder["entries"]) == EXPECTED_ALGORITHMS
        for name, spec in ((s.name, s) for s in algorithms.all_specs()):
            assert spec.max_practical_vertices == hints[name]

    def test_stale_backend_ladder_warns_once_but_hints_survive(
        self, monkeypatch, tmp_path
    ):
        # A ladder measured under the *other* kernel backend is stale: the
        # hints stay in use (best available estimate) but the first read
        # raises one RuntimeWarning; the cache absorbs repeat calls.
        import warnings

        from repro.algorithms import builtin
        from repro.kernels import active_backend

        other = "numpy" if active_backend() == "python" else "python"
        ladder = {
            "schema": "capacity-ladder/v1",
            "kernel_backend": other,
            "entries": {"greedy": {"max_practical_vertices": 123}},
        }
        path = tmp_path / "CAPACITY.json"
        path.write_text(json.dumps(ladder), encoding="utf-8")
        monkeypatch.setattr(builtin, "MEASURED_CAPACITY_PATH", path)
        monkeypatch.setattr(builtin, "_measured_hints_cache", None)
        with pytest.warns(RuntimeWarning, match="stale"):
            assert builtin.measured_capacity_hints() == {"greedy": 123}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert builtin.measured_capacity_hints() == {"greedy": 123}

    def test_unstamped_or_matching_ladders_do_not_warn(self, monkeypatch, tmp_path):
        import warnings

        from repro.algorithms import builtin
        from repro.kernels import active_backend

        for stamp in ({}, {"kernel_backend": active_backend()}):
            ladder = {
                "schema": "capacity-ladder/v1",
                "entries": {"greedy": {"max_practical_vertices": 99}},
                **stamp,
            }
            path = tmp_path / "CAPACITY.json"
            path.write_text(json.dumps(ladder), encoding="utf-8")
            monkeypatch.setattr(builtin, "MEASURED_CAPACITY_PATH", path)
            monkeypatch.setattr(builtin, "_measured_hints_cache", None)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert builtin.measured_capacity_hints() == {"greedy": 99}

    def test_duplicate_registration_rejected(self):
        # Registered under a throwaway name and removed again: leaking a test
        # algorithm into the global registry would enlarge every
        # registry-driven scenario matrix (e.g. table2's).
        from repro.algorithms import registry as registry_module

        spec = AlgorithmSpec(
            name="duplicate-algorithm-test",
            description="d",
            build=lambda graph, params, *, seed=0, simulator=None: None,
        )
        register(spec)
        try:
            with pytest.raises(ValueError):
                register(
                    AlgorithmSpec(
                        name="duplicate-algorithm-test",
                        description="d",
                        build=lambda graph, params, *, seed=0, simulator=None: None,
                    )
                )
            assert register(spec) is spec  # re-registering the same object is a no-op
        finally:
            registry_module._REGISTRY.pop("duplicate-algorithm-test", None)

    def test_every_spec_describes_json_safely(self):
        for spec in algorithms.all_specs():
            description = spec.describe()
            json.dumps(description)
            assert description["name"] == spec.name
            assert description["tags"] == list(spec.tags)


class TestParamSchema:
    def test_defaults_and_resolution(self):
        spec = get_spec("new-centralized")
        resolved = spec.resolve_params({"epsilon": 0.25})
        assert resolved["epsilon"] == 0.25
        assert resolved["kappa"] == 3
        assert resolved["epsilon_is_internal"] is False

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError):
            get_spec("greedy").resolve_params({"epsilon": 0.25})

    def test_subset_params_picks_declared_subset(self):
        pool = {"epsilon": 0.25, "kappa": 4, "rho": 0.5, "epsilon_is_internal": True}
        assert get_spec("greedy").subset_params(pool) == {"kappa": 4}
        assert get_spec("elkin-peleg-2001").subset_params(pool) == pool

    def test_declared_guarantee_formulas(self):
        greedy = get_spec("greedy").declared_guarantee({"stretch": 7})
        assert greedy == StretchGuarantee(multiplicative=7.0, additive=0.0)
        baswana = get_spec("baswana-sen").declared_guarantee({"kappa": 4})
        assert baswana.multiplicative == 7.0
        engine = get_spec("new-centralized").declared_guarantee(
            {"epsilon": 0.25, "epsilon_is_internal": True}
        )
        assert engine.multiplicative > 1.0
        assert engine.additive > 0.0


class TestBuildFacade:
    def test_build_by_name(self, graph):
        run = build("greedy", graph, stretch=5)
        assert isinstance(run, RunResult)
        assert run.algorithm == "greedy"
        assert run.spanner.is_subgraph_of(graph)
        assert run.effective_guarantee().multiplicative == 5.0

    def test_build_unknown_name(self, graph):
        with pytest.raises(KeyError):
            build("no-such-algorithm", graph)

    def test_build_unknown_parameter(self, graph):
        with pytest.raises(KeyError):
            build("baswana-sen", graph, epsilon=0.5)

    def test_engine_run_keeps_full_source(self, graph):
        run = build(
            "new-centralized", graph, epsilon=0.25, epsilon_is_internal=True
        )
        assert isinstance(run.source, SpannerResult)
        assert run.engine == "centralized"
        assert run.phases and "num_clusters" in run.phases[0]
        assert run.details["edges_by_step"]["total"] == run.num_edges

    def test_distributed_run_carries_ledger(self, graph):
        run = build(
            "new-distributed", graph, epsilon=0.25, epsilon_is_internal=True
        )
        assert run.engine == "distributed"
        assert run.ledger_summary is not None
        assert run.ledger_summary["nominal_rounds"] == run.nominal_rounds

    def test_simulator_rejected_outside_distributed_engine(self, graph):
        with pytest.raises(ValueError):
            build("greedy", graph, simulator=object())
        with pytest.raises(ValueError):
            build("new-centralized", graph, simulator=object())

    def test_randomized_builds_respect_seed(self, graph):
        first = build("baswana-sen", graph, seed=5)
        again = build("baswana-sen", graph, seed=5)
        other = build("elkin-neiman-2017", graph, seed=6, epsilon=0.25,
                      epsilon_is_internal=True)
        assert sorted(first.spanner.edge_set()) == sorted(again.spanner.edge_set())
        assert other.algorithm == "elkin-neiman-2017"

    def test_run_result_label_contract_enforced(self, graph):
        def mislabelled(graph, params, *, seed=0, simulator=None):
            return RunResult(algorithm="wrong-name", graph=graph, spanner=graph)

        # Deliberately *not* registered: the contract is enforced by run().
        spec = AlgorithmSpec(
            name="label-contract-test", description="d", build=mislabelled
        )
        with pytest.raises(RuntimeError):
            spec.run(graph)
