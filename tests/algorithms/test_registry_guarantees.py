"""Registry-driven guarantee property test.

Every registered algorithm is run **by name** on two small graphs and its
*declared* guarantee is verified exhaustively with ``evaluate_stretch``.  A
newly registered algorithm is therefore guarantee-checked for free: if its
``AlgorithmSpec`` declares a ``(1 + alpha, beta)`` bound its spanners do not
satisfy, this test fails without anyone writing a dedicated test for it.
"""

from __future__ import annotations

import pytest

from repro import algorithms
from repro.analysis import evaluate_run_stretch, evaluate_stretch, verify_registered_guarantee
from repro.graphs import clustered_path_graph, gnp_random_graph
from repro.graphs.components import same_component_structure
from repro.kernels import numpy_available

#: Human-scale phase thresholds; every spec picks its declared subset.
PARAMETER_POOL = {
    "epsilon": 0.25,
    "kappa": 3,
    "rho": 1.0 / 3.0,
    "epsilon_is_internal": True,
}

#: Two structurally different small graphs: an unstructured random graph and
#: a large-diameter clustered path (the regime near-additive spanners are
#: about).  Small enough for exhaustive all-pairs verification.
GRAPHS = {
    "gnp": lambda: gnp_random_graph(36, 0.15, seed=3),
    "clustered-path": lambda: clustered_path_graph(5, 8),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("name", algorithms.algorithm_names())
def test_declared_guarantee_holds(name, graph_name):
    graph = GRAPHS[graph_name]()
    spec = algorithms.get_spec(name)
    run = spec.run(graph, spec.subset_params(PARAMETER_POOL), seed=2)

    assert run.algorithm == name
    assert run.spanner.is_subgraph_of(graph)
    assert same_component_structure(graph, run.spanner)

    guarantee = run.effective_guarantee()
    assert guarantee is not None, f"{name} must declare a stretch guarantee"
    report = evaluate_stretch(graph, run.spanner, guarantee=guarantee)
    assert report.pairs_checked > 0
    assert report.satisfies_guarantee, (
        f"{name} violated its declared guarantee "
        f"(1+{guarantee.multiplicative - 1:.3g}, {guarantee.additive:.3g}) "
        f"on {graph_name}: {len(report.violations)} violations"
    )


@pytest.mark.parametrize("name", algorithms.algorithm_names())
def test_declared_guarantee_matches_spec_formula(name):
    """The guarantee a run reports is the one the spec formula declares."""
    spec = algorithms.get_spec(name)
    params = spec.subset_params(PARAMETER_POOL)
    declared = spec.declared_guarantee(params)
    if declared is None:
        pytest.skip(f"{name} declares no guarantee formula")
    run = spec.run(GRAPHS["gnp"](), params, seed=2)
    reported = run.effective_guarantee()
    assert reported.multiplicative == pytest.approx(declared.multiplicative)
    assert reported.additive == pytest.approx(declared.additive)


@pytest.mark.parametrize("name", algorithms.algorithm_names())
def test_registered_guarantee_kind_verified(name):
    """Every registration passes the kind-dispatched verifier.

    Unlike :func:`test_declared_guarantee_holds` (which checks the run-level
    stretch guarantee), this exercises the registry's ``guarantee_kind``
    dispatch -- exact MST weight for the distributed MST, the declared
    average-stretch bound for the low-stretch tree, pair stretch for the
    spanners.
    """
    graph = GRAPHS["gnp"]()
    spec = algorithms.get_spec(name)
    run = spec.run(graph, spec.subset_params(PARAMETER_POOL), seed=2)
    check = verify_registered_guarantee(spec, run)
    assert check.kind == spec.guarantee_kind
    assert check.ok, f"{name} failed its {check.kind} guarantee: {check.failure}"


#: The PR-10 survey siblings: each must be buildable and guarantee-checked
#: under both kernel pins (the env var is read at backend-resolution time).
SURVEY_SIBLINGS = (
    "eest-low-stretch-tree",
    "elkin-matar-linear",
    "elkin-mst-2017",
    "elkin-neiman-sparse",
)

KERNEL_PINS = ("python", "numpy")


def _pin_kernel(monkeypatch, kernel: str) -> None:
    if kernel == "numpy" and not numpy_available():
        pytest.skip("numpy/scipy not installed; vectorized pin not testable")
    monkeypatch.setenv("REPRO_KERNEL", kernel)


@pytest.mark.parametrize("kernel", KERNEL_PINS)
@pytest.mark.parametrize("name", SURVEY_SIBLINGS)
def test_survey_sibling_verified_under_kernel_pin(name, kernel, monkeypatch):
    _pin_kernel(monkeypatch, kernel)
    graph = gnp_random_graph(30, 0.15, seed=4)
    spec = algorithms.get_spec(name)
    run = spec.run(graph, spec.subset_params(PARAMETER_POOL), seed=1)
    assert run.spanner.is_subgraph_of(graph)
    assert same_component_structure(graph, run.spanner)
    check = verify_registered_guarantee(spec, run)
    assert check.ok, f"{name} under {kernel} kernel: {check.failure}"


@pytest.mark.parametrize("kernel", KERNEL_PINS)
@pytest.mark.parametrize(
    "name", [n for n in SURVEY_SIBLINGS if algorithms.get_spec(n).supports_incremental]
)
def test_incremental_sibling_survives_churn_under_kernel_pin(name, kernel, monkeypatch):
    """supports_incremental survey siblings maintain their spanner through churn."""
    from repro.dynamic import make_trace, run_trace

    _pin_kernel(monkeypatch, kernel)
    trace = make_trace("uniform", size=32, steps=10, seed=6)
    dynamic = run_trace(name, trace, seed=3)
    assert len(dynamic.records) == 10
    graph, spanner = dynamic.graph, dynamic.spanner
    assert spanner.is_subgraph_of(graph)
    report = evaluate_stretch(graph, spanner, guarantee=dynamic.guarantee)
    assert report.satisfies_guarantee


def test_evaluate_run_stretch_accessor_agrees():
    """The unified-result accessor reports the same verdict as evaluate_stretch."""
    graph = GRAPHS["gnp"]()
    spec = algorithms.get_spec("new-centralized")
    run = spec.run(graph, spec.subset_params(PARAMETER_POOL))
    report = evaluate_run_stretch(run)  # exhaustive below 60 vertices
    direct = evaluate_stretch(graph, run.spanner, guarantee=run.effective_guarantee())
    assert report.pairs_checked == direct.pairs_checked
    assert report.satisfies_guarantee == direct.satisfies_guarantee
