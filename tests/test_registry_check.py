"""Tests for the registry completeness gate (``scripts/registry_check.py``)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro import algorithms

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT_PATH = REPO_ROOT / "scripts" / "registry_check.py"


@pytest.fixture(scope="module")
def registry_check():
    spec = importlib.util.spec_from_file_location("registry_check_under_test", SCRIPT_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


def _healthy_fixtures(tmp_path: Path):
    """Synthetic CAPACITY.json + EXPERIMENTS.md covering every registration."""
    names = algorithms.algorithm_names()
    capacity = tmp_path / "CAPACITY.json"
    capacity.write_text(
        json.dumps(
            {
                "schema": "capacity-ladder/v1",
                "entries": {name: {"max_practical_vertices": 1024} for name in names},
            }
        ),
        encoding="utf-8",
    )
    rows = "\n".join(f"| {name} | tags | params | 1024 | desc |" for name in names)
    experiments = tmp_path / "EXPERIMENTS.md"
    experiments.write_text(
        "# Experiments\n\n## Algorithm registry\n\n"
        "| algorithm | tags | parameters | max n | description |\n"
        "| --- | --- | --- | --- | --- |\n"
        f"{rows}\n\n## Next section\n\ntext\n",
        encoding="utf-8",
    )
    return experiments, capacity


def test_healthy_fixtures_report_no_problems(registry_check, tmp_path):
    experiments, capacity = _healthy_fixtures(tmp_path)
    assert registry_check.find_problems(experiments, capacity) == []


def test_every_registration_has_scenario_membership(registry_check):
    """The real scenario registry must exercise every registered algorithm."""
    members = registry_check.scenario_membership()
    missing = [n for n in algorithms.algorithm_names() if n not in members]
    assert missing == []


def test_stripped_docs_row_fails_the_gate(registry_check, tmp_path):
    experiments, capacity = _healthy_fixtures(tmp_path)
    victim = algorithms.algorithm_names()[0]
    content = "\n".join(
        line
        for line in experiments.read_text(encoding="utf-8").splitlines()
        if not line.startswith(f"| {victim} |")
    )
    experiments.write_text(content, encoding="utf-8")
    problems = registry_check.find_problems(experiments, capacity)
    assert len(problems) == 1
    assert victim in problems[0] and "Algorithm registry" in problems[0]


def test_missing_capacity_entry_fails_the_gate(registry_check, tmp_path):
    experiments, capacity = _healthy_fixtures(tmp_path)
    ladder = json.loads(capacity.read_text(encoding="utf-8"))
    victim = algorithms.algorithm_names()[-1]
    del ladder["entries"][victim]
    capacity.write_text(json.dumps(ladder), encoding="utf-8")
    problems = registry_check.find_problems(experiments, capacity)
    assert len(problems) == 1
    assert victim in problems[0] and "CAPACITY.json" in problems[0]


def test_stale_docs_row_for_unregistered_algorithm_fails(registry_check, tmp_path):
    experiments, capacity = _healthy_fixtures(tmp_path)
    with experiments.open("a", encoding="utf-8") as handle:
        handle.write("")
    content = experiments.read_text(encoding="utf-8").replace(
        "## Next section",
        "| ghost-algorithm | tags | params | 1024 | desc |\n\n## Next section",
    )
    # The ghost row must land inside the registry table, not after it.
    content = content.replace(
        "\n\n| ghost-algorithm", "\n| ghost-algorithm", 1
    )
    experiments.write_text(content, encoding="utf-8")
    problems = registry_check.find_problems(experiments, capacity)
    assert any("ghost-algorithm" in p and "not registered" in p for p in problems)


def test_main_exit_codes(registry_check, tmp_path, capsys):
    experiments, capacity = _healthy_fixtures(tmp_path)
    argv = [
        "--experiments-md",
        str(experiments),
        "--capacity-json",
        str(capacity),
    ]
    assert registry_check.main(argv) == 0
    assert "registered algorithms" in capsys.readouterr().out
    experiments.write_text("# nothing here\n", encoding="utf-8")
    assert registry_check.main(argv) == 1
    assert "problem(s)" in capsys.readouterr().err
