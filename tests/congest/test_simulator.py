"""Unit tests for the synchronous CONGEST simulator."""

from __future__ import annotations

from typing import List

import pytest

from repro.congest import (
    CongestionViolation,
    Message,
    NodeContext,
    NodeProgram,
    ProtocolError,
    RecordingTracer,
    RoundLimitExceeded,
    Simulator,
)
from repro.graphs import Graph, cycle_graph, path_graph, star_graph


class FloodOnce(NodeProgram):
    """Source announces once; everyone forwards the first time they hear it."""

    def __init__(self, node_id: int, is_source: bool) -> None:
        self.node_id = node_id
        self.is_source = is_source
        self.heard_at = 0 if is_source else None

    def on_start(self, ctx: NodeContext) -> None:
        if self.is_source:
            ctx.broadcast("flood")

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> None:
        if self.heard_at is None and any(m.content[0] == "flood" for m in inbox):
            self.heard_at = ctx.round_index
            ctx.broadcast("flood")

    def result(self):
        return self.heard_at


class ChattyProgram(NodeProgram):
    """Deliberately violates the per-edge bandwidth by sending two messages per round."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_start(self, ctx: NodeContext) -> None:
        for _ in range(2):
            for neighbor in ctx.neighbors:
                ctx.send(neighbor, "spam")

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> None:
        return None


class NeverIdle(NodeProgram):
    """Claims it always has work, so the protocol cannot quiesce."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> None:
        return None

    def is_idle(self) -> bool:
        return False


class TestBasicExecution:
    def test_flood_reaches_everyone_in_distance_rounds(self):
        graph = path_graph(6)
        sim = Simulator(graph)
        programs = [FloodOnce(v, v == 0) for v in range(6)]
        run = sim.run_protocol(programs, label="flood")
        assert run.results == [0, 1, 2, 3, 4, 5]
        # 5 rounds to reach the far end plus one final round delivering the
        # last vertex's (ignored) echo.
        assert run.rounds_executed == 6

    def test_flood_on_star_terminates_quickly(self):
        graph = star_graph(5)
        sim = Simulator(graph)
        programs = [FloodOnce(v, v == 1) for v in range(6)]
        run = sim.run_protocol(programs)
        assert run.rounds_executed == 3
        assert run.results[0] == 1

    def test_messages_counted(self):
        graph = cycle_graph(4)
        sim = Simulator(graph)
        programs = [FloodOnce(v, v == 0) for v in range(4)]
        run = sim.run_protocol(programs)
        assert run.messages_delivered >= 4
        assert run.words_delivered == run.messages_delivered  # single-word payloads

    def test_isolated_vertices_do_not_block_termination(self):
        graph = Graph(3, [(0, 1)])
        sim = Simulator(graph)
        programs = [FloodOnce(v, v == 0) for v in range(3)]
        run = sim.run_protocol(programs)
        assert run.results[2] is None

    def test_no_source_protocol_terminates_immediately(self):
        graph = path_graph(4)
        sim = Simulator(graph)
        programs = [FloodOnce(v, False) for v in range(4)]
        run = sim.run_protocol(programs)
        assert run.rounds_executed == 0

    def test_program_count_must_match(self):
        sim = Simulator(path_graph(3))
        with pytest.raises(ProtocolError):
            sim.run_protocol([FloodOnce(0, True)])


class TestCongestionAccounting:
    def test_strict_mode_raises_on_violation(self):
        graph = path_graph(3)
        sim = Simulator(graph, bandwidth_messages=1, strict_congestion=True)
        with pytest.raises(CongestionViolation):
            sim.run_protocol([ChattyProgram(v) for v in range(3)])

    def test_lenient_mode_records_violations(self):
        graph = path_graph(3)
        sim = Simulator(graph, bandwidth_messages=1, strict_congestion=False)
        run = sim.run_protocol([ChattyProgram(v) for v in range(3)])
        assert run.violated_congestion
        assert run.max_edge_congestion == 2

    def test_larger_bandwidth_allows_batch(self):
        graph = path_graph(3)
        sim = Simulator(graph, bandwidth_messages=2)
        run = sim.run_protocol([ChattyProgram(v) for v in range(3)])
        assert not run.violated_congestion

    def test_bandwidth_must_be_positive(self):
        with pytest.raises(ValueError):
            Simulator(path_graph(2), bandwidth_messages=0)

    def test_flood_has_unit_congestion(self):
        graph = cycle_graph(6)
        sim = Simulator(graph)
        run = sim.run_protocol([FloodOnce(v, v == 0) for v in range(6)])
        assert run.max_edge_congestion == 1


class TestTerminationAndLedger:
    def test_round_limit_enforced(self):
        graph = path_graph(2)
        sim = Simulator(graph)
        with pytest.raises(RoundLimitExceeded):
            sim.run_protocol([NeverIdle(v) for v in range(2)], max_rounds=5)

    def test_ledger_records_nominal_rounds(self):
        graph = path_graph(5)
        sim = Simulator(graph)
        sim.run_protocol([FloodOnce(v, v == 0) for v in range(5)], label="flood", nominal_rounds=100)
        assert sim.ledger.nominal_rounds == 100
        assert sim.ledger.simulated_rounds == 5
        assert sim.ledger.charges[0].label == "flood"

    def test_ledger_defaults_to_executed_rounds(self):
        graph = path_graph(5)
        sim = Simulator(graph)
        sim.run_protocol([FloodOnce(v, v == 0) for v in range(5)])
        assert sim.ledger.nominal_rounds == 5

    def test_tracer_sees_every_round(self):
        tracer = RecordingTracer()
        graph = path_graph(6)
        sim = Simulator(graph, tracer=tracer)
        sim.run_protocol([FloodOnce(v, v == 0) for v in range(6)])
        assert tracer.rounds_seen == 6
        assert tracer.total_messages > 0
        assert tracer.busiest_round()[1] >= 1
