"""Tests for the simulator's typed errors and the paths that raise them."""

from __future__ import annotations

from typing import List

import pytest

from repro.congest import (
    CongestionViolation,
    FaultPlan,
    Message,
    NodeContext,
    NodeProgram,
    ProtocolError,
    ProtocolFault,
    RoundLimitExceeded,
    Simulator,
)
from repro.congest.errors import (
    CongestError,
    InvalidDestination,
    MessageTooLarge,
)
from repro.graphs import path_graph


class TestErrorTaxonomy:
    def test_every_simulator_error_is_a_congest_error(self):
        for error_type in (
            CongestionViolation,
            MessageTooLarge,
            InvalidDestination,
            ProtocolError,
            RoundLimitExceeded,
            ProtocolFault,
        ):
            assert issubclass(error_type, CongestError)

    def test_congestion_violation_carries_the_offending_edge(self):
        error = CongestionViolation(3, 1, 2, attempted=4, allowed=1)
        assert (error.round_index, error.sender, error.receiver) == (3, 1, 2)
        assert (error.attempted, error.allowed) == (4, 1)
        assert "round 3" in str(error) and "bandwidth is 1" in str(error)

    def test_message_too_large_reports_both_sizes(self):
        error = MessageTooLarge(9, 4)
        assert (error.words, error.allowed) == (9, 4)
        assert "9 words" in str(error)

    def test_invalid_destination_names_both_endpoints(self):
        error = InvalidDestination(0, 5)
        assert (error.sender, error.receiver) == (0, 5)
        assert "not a neighbour" in str(error)

    def test_round_limit_reports_the_budget(self):
        error = RoundLimitExceeded(77)
        assert error.max_rounds == 77
        assert "77 rounds" in str(error)

    def test_protocol_fault_pluralizes_and_copies_counters(self):
        counters = {"dropped": 3}
        fault = ProtocolFault("bfs", "round-timeout", attempts=2, fault_counters=counters)
        assert "after 2 attempts" in str(fault)
        counters["dropped"] = 99
        assert fault.fault_counters == {"dropped": 3}

    def test_protocol_fault_single_attempt_and_absent_counters(self):
        fault = ProtocolFault("ruling-set", "knock-out-timeout")
        assert "after 1 attempt" in str(fault)
        assert not str(fault).endswith("attempts")
        assert fault.fault_counters is None


class _MalformedSender(NodeProgram):
    """Drives one malformed send, selected by ``mode``, from node 0 at start."""

    def __init__(self, node_id: int, mode: str) -> None:
        self.node_id = node_id
        self.mode = mode

    def on_start(self, ctx: NodeContext) -> None:
        if self.node_id != 0:
            return
        if self.mode == "non-neighbor":
            ctx.send(3, "hi")
        elif self.mode == "non-neighbor-flat":
            ctx.send_flat(3, 1)
        elif self.mode == "oversized":
            ctx.send(1, 1, 2, 3, 4, 5)
        elif self.mode == "oversized-flat":
            ctx.send_flat(1, 1, 2, 3, 4, 5)
        elif self.mode == "oversized-broadcast":
            ctx.broadcast(1, 2, 3, 4, 5)
        elif self.mode == "oversized-broadcast-flat":
            ctx.broadcast_flat(1, 2, 3, 4, 5)

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> None:
        return None


class _Chatty(NodeProgram):
    """Exceeds the unit per-edge bandwidth by double-sending each round."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_start(self, ctx: NodeContext) -> None:
        for neighbor in ctx.neighbors:
            ctx.send(neighbor, "a")
            ctx.send(neighbor, "b")

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> None:
        return None


class _NeverIdle(NodeProgram):
    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> None:
        return None

    def is_idle(self) -> bool:
        return False


class _Flood(NodeProgram):
    def __init__(self, node_id: int, is_source: bool) -> None:
        self.node_id = node_id
        self.heard = is_source
        if is_source:
            self.heard_at = 0
        else:
            self.heard_at = None

    def on_start(self, ctx: NodeContext) -> None:
        if self.heard:
            ctx.broadcast("flood")

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> None:
        if not self.heard and inbox:
            self.heard = True
            self.heard_at = ctx.round_index
            ctx.broadcast("flood")

    def result(self):
        return self.heard_at


def _run(sim: Simulator, programs, **kwargs):
    return sim.run_protocol(programs, **kwargs)


class TestMalformedMessages:
    @pytest.mark.parametrize("mode", ["non-neighbor", "non-neighbor-flat"])
    def test_sending_to_a_non_neighbor_is_rejected(self, mode):
        sim = Simulator(path_graph(4))
        with pytest.raises(InvalidDestination) as info:
            _run(sim, [_MalformedSender(v, mode) for v in range(4)])
        assert info.value.sender == 0
        assert info.value.receiver == 3

    @pytest.mark.parametrize(
        "mode",
        [
            "oversized",
            "oversized-flat",
            "oversized-broadcast",
            "oversized-broadcast-flat",
        ],
    )
    def test_oversized_payloads_are_rejected_on_every_send_path(self, mode):
        sim = Simulator(path_graph(4), max_words_per_message=4)
        with pytest.raises(MessageTooLarge) as info:
            _run(sim, [_MalformedSender(v, mode) for v in range(4)])
        assert info.value.words == 5
        assert info.value.allowed == 4


class TestFaultedSchedulerErrors:
    """The fault-mode scheduler enforces the same model limits."""

    def test_strict_congestion_is_audited_on_pre_fault_sends(self):
        # A dropped delivery must not excuse the violating *send*: the audit
        # runs before the fault schedule touches the message.
        sim = Simulator(path_graph(3), strict_congestion=True)
        plan = FaultPlan(seed=5, drop_rate=0.9)
        with pytest.raises(CongestionViolation):
            _run(sim, [_Chatty(v) for v in range(3)], fault_plan=plan)

    def test_lenient_congestion_is_recorded_under_faults(self):
        sim = Simulator(path_graph(3), strict_congestion=False)
        plan = FaultPlan(seed=5, drop_rate=0.5)
        run = _run(sim, [_Chatty(v) for v in range(3)], fault_plan=plan)
        assert run.violated_congestion
        assert run.fault_counters is not None

    def test_round_limit_is_enforced_under_faults(self):
        sim = Simulator(path_graph(2))
        plan = FaultPlan(seed=5, drop_rate=0.5)
        with pytest.raises(RoundLimitExceeded) as info:
            _run(sim, [_NeverIdle(v) for v in range(2)], fault_plan=plan, max_rounds=5)
        assert info.value.max_rounds == 5

    def test_program_count_is_checked_before_fault_dispatch(self):
        sim = Simulator(path_graph(3))
        plan = FaultPlan(seed=5, drop_rate=0.5)
        with pytest.raises(ProtocolError):
            _run(sim, [_NeverIdle(0)], fault_plan=plan)


class TestAbortedRunRecovery:
    def test_simulator_recovers_cleanly_after_an_aborted_run(self):
        # An aborted run leaves queued messages behind; the next run on the
        # same simulator must scrub them or the flood would mis-count.
        sim = Simulator(path_graph(4))
        with pytest.raises(InvalidDestination):
            _run(sim, [_MalformedSender(v, "non-neighbor") for v in range(4)])
        run = _run(sim, [_Flood(v, v == 0) for v in range(4)])
        assert run.results == [0, 1, 2, 3]

    def test_recovery_after_round_limit_under_faults(self):
        sim = Simulator(path_graph(3))
        plan = FaultPlan(seed=5, delay_rate=0.5, max_delay=2)
        with pytest.raises(RoundLimitExceeded):
            _run(sim, [_NeverIdle(v) for v in range(3)], fault_plan=plan, max_rounds=4)
        run = _run(sim, [_Flood(v, v == 0) for v in range(3)])
        assert run.results == [0, 1, 2]
