"""Unit tests for node programs and their execution context."""

from __future__ import annotations

import pytest

from repro.congest import (
    InvalidDestination,
    MessageTooLarge,
    NodeContext,
    NodeProgram,
    StatefulNodeProgram,
    make_programs,
)


def make_context(node_id=0, neighbors=(1, 2), max_words=4):
    return NodeContext(node_id, neighbors, max_words)


class TestNodeContext:
    def test_send_queues_message(self):
        ctx = make_context()
        ctx.send(1, "tag", 7)
        assert ctx.pending_sends == 1
        outbox = ctx.drain_outbox()
        assert outbox[0][0] == 1
        assert outbox[0][1].content == ("tag", 7)
        assert ctx.pending_sends == 0

    def test_send_to_non_neighbour_rejected(self):
        ctx = make_context()
        with pytest.raises(InvalidDestination):
            ctx.send(9, "tag")

    def test_oversized_message_rejected(self):
        ctx = make_context(max_words=2)
        with pytest.raises(MessageTooLarge):
            ctx.send(1, "tag", 1, 2, 3)

    def test_broadcast_sends_to_all_neighbours(self):
        ctx = make_context(neighbors=(3, 1, 2))
        ctx.broadcast("hello")
        destinations = sorted(dest for dest, _ in ctx.drain_outbox())
        assert destinations == [1, 2, 3]

    def test_neighbours_sorted(self):
        ctx = make_context(neighbors=(5, 2, 9))
        assert ctx.neighbors == (2, 5, 9)


class TestNodeProgram:
    def test_base_program_is_idle_and_has_no_result(self):
        program = NodeProgram()
        assert program.is_idle()
        assert program.result() is None

    def test_base_on_round_not_implemented(self):
        with pytest.raises(NotImplementedError):
            NodeProgram().on_round(make_context(), [])

    def test_stateful_program_returns_state(self):
        state = {"x": 1}
        program = StatefulNodeProgram(3, state)
        assert program.result() is state
        assert program.node_id == 3


class TestMakePrograms:
    def test_factory_without_states(self):
        programs = make_programs(3, lambda v: StatefulNodeProgram(v, {}))
        assert [p.node_id for p in programs] == [0, 1, 2]

    def test_factory_with_states(self):
        states = [{"id": v} for v in range(3)]
        programs = make_programs(3, StatefulNodeProgram, states)
        assert programs[2].state == {"id": 2}

    def test_state_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_programs(3, StatefulNodeProgram, [{}])
