"""Unit tests for CONGEST messages and word counting."""

from __future__ import annotations

from repro.congest import Message, count_words


def test_word_count_flat():
    assert count_words(("tag", 3, 7)) == 3


def test_word_count_nested():
    assert count_words(("tag", (1, 2), 5)) == 4


def test_word_count_empty():
    assert count_words(()) == 0


def test_message_counts_words_automatically():
    msg = Message(sender=2, content=("explore", 5, 1))
    assert msg.words == 3
    assert msg.sender == 2


def test_message_tag():
    assert Message(0, ("forest", 1, 2)).tag == "forest"
    assert Message(0, ()).tag is None


def test_message_repr_mentions_sender_and_content():
    text = repr(Message(4, ("x", 1)))
    assert "4" in text and "x" in text


def test_message_is_frozen():
    msg = Message(0, ("a",))
    try:
        msg.sender = 3  # type: ignore[misc]
        raised = False
    except AttributeError:
        raised = True
    assert raised
