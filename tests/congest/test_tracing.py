"""Unit tests for simulator tracers and errors."""

from __future__ import annotations

from repro.congest import (
    CongestionViolation,
    InvalidDestination,
    MessageTooLarge,
    NullTracer,
    RecordingTracer,
    RoundLimitExceeded,
)


def test_null_tracer_ignores_events():
    tracer = NullTracer()
    assert tracer.on_round(1, 5) is None


def test_recording_tracer_accumulates():
    tracer = RecordingTracer()
    tracer.on_round(1, 3)
    tracer.on_round(2, 10)
    tracer.on_round(3, 1)
    assert tracer.rounds_seen == 3
    assert tracer.total_messages == 14
    assert tracer.busiest_round() == (2, 10)


def test_recording_tracer_empty_busiest():
    assert RecordingTracer().busiest_round() == (0, 0)


def test_congestion_violation_message():
    error = CongestionViolation(round_index=3, sender=1, receiver=2, attempted=4, allowed=1)
    assert "round 3" in str(error)
    assert error.attempted == 4


def test_message_too_large_fields():
    error = MessageTooLarge(words=9, allowed=4)
    assert error.words == 9 and error.allowed == 4


def test_invalid_destination_fields():
    error = InvalidDestination(sender=0, receiver=7)
    assert "7" in str(error)


def test_round_limit_exceeded_fields():
    error = RoundLimitExceeded(max_rounds=10)
    assert error.max_rounds == 10
