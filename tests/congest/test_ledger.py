"""Unit tests for the round/message ledger."""

from __future__ import annotations

import pytest

from repro.congest import RoundLedger


def test_empty_ledger_totals():
    ledger = RoundLedger()
    assert ledger.nominal_rounds == 0
    assert ledger.simulated_rounds == 0
    assert ledger.messages == 0
    assert ledger.max_edge_congestion == 0


def test_charge_accumulates():
    ledger = RoundLedger()
    ledger.charge("a", nominal_rounds=10, simulated_rounds=3, messages=5, words=9, max_edge_congestion=1)
    ledger.charge("b", nominal_rounds=7, simulated_rounds=7, messages=2, words=2, max_edge_congestion=2)
    assert ledger.nominal_rounds == 17
    assert ledger.simulated_rounds == 10
    assert ledger.messages == 7
    assert ledger.words == 11
    assert ledger.max_edge_congestion == 2


def test_negative_rounds_rejected():
    ledger = RoundLedger()
    with pytest.raises(ValueError):
        ledger.charge("bad", nominal_rounds=-1)


def test_by_label_groups():
    ledger = RoundLedger()
    ledger.charge("phase0:explore", nominal_rounds=4)
    ledger.charge("phase0:explore", nominal_rounds=6)
    ledger.charge("phase0:ruling", nominal_rounds=3)
    assert ledger.by_label() == {"phase0:explore": 10, "phase0:ruling": 3}


def test_merge():
    a = RoundLedger()
    a.charge("x", nominal_rounds=1)
    b = RoundLedger()
    b.charge("y", nominal_rounds=2)
    a.merge(b)
    assert a.nominal_rounds == 3
    assert len(a.charges) == 2


def test_summary_keys():
    ledger = RoundLedger()
    ledger.charge("x", nominal_rounds=5, simulated_rounds=2, messages=3, words=4, max_edge_congestion=1)
    summary = ledger.summary()
    assert summary["nominal_rounds"] == 5
    assert summary["simulated_rounds"] == 2
    assert summary["messages"] == 3
    assert summary["words"] == 4
    assert summary["max_edge_congestion"] == 1
    assert summary["num_charges"] == 1
