"""Golden-run regression tests for the active-set CONGEST scheduler.

The counters below were recorded with the seed (pre-flat-array) simulator:
per-round dict-of-inboxes delivery, O(n)-per-round idle scans and per-pair
broadcast queueing.  The rewritten scheduler (reused inbox lists, incremental
idle tracking, sender-batched congestion audit, broadcast sentinels) must
reproduce them bit-for-bit -- any drift in ``rounds_executed``,
``messages_delivered``, ``words_delivered``, ``max_edge_congestion`` or the
per-node results means the "optimization" changed protocol behaviour.

``scripts/bench_compare.py`` checks the same invariants against the committed
``BENCH_seed.json``; this test pins them into the tier-1 suite.
"""

from __future__ import annotations

import hashlib
import json

from repro import build_spanner
from repro.congest.simulator import Simulator
from repro.experiments import default_parameters
from repro.graphs import gnp_random_graph, planted_partition_graph
from repro.primitives.bfs_forest import run_bfs_forest


def _digest(obj) -> str:
    """Same stable content digest as scripts/bench_compare.py."""
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class TestForestGoldenRun:
    """A bare BFS-forest protocol pins the scheduler's accounting."""

    def _run(self):
        graph = planted_partition_graph(8, 12, p_intra=0.5, p_inter=0.03, seed=5)
        simulator = Simulator(graph)
        return run_bfs_forest(simulator, sources=[0, 17, 55, 80], depth=6)

    def test_counters_match_seed_simulator(self):
        forest = self._run()
        assert forest.run.rounds_executed == 4
        assert forest.run.messages_delivered == 702
        assert forest.run.words_delivered == 2106
        assert forest.run.max_edge_congestion == 1
        assert not forest.run.congestion_violations

    def test_results_match_seed_simulator(self):
        forest = self._run()
        assert _digest(forest.run.results) == "ef9cf9921c445846"

    def test_rerun_on_same_simulator_is_identical(self):
        # Contexts and inbox buffers are reused across runs; a second run must
        # start from clean state and reproduce the same counters.
        graph = planted_partition_graph(8, 12, p_intra=0.5, p_inter=0.03, seed=5)
        simulator = Simulator(graph)
        first = run_bfs_forest(simulator, sources=[0, 17, 55, 80], depth=6)
        second = run_bfs_forest(simulator, sources=[0, 17, 55, 80], depth=6)
        assert first.run.rounds_executed == second.run.rounds_executed
        assert first.run.messages_delivered == second.run.messages_delivered
        assert first.run.results == second.run.results


class TestDistributedBuildGoldenRun:
    """The full distributed spanner build pins ledger totals and the spanner."""

    def test_build_matches_seed_engine(self):
        graph = gnp_random_graph(120, 0.05, seed=21)
        result = build_spanner(
            graph, parameters=default_parameters(), engine="distributed"
        )
        assert result.nominal_rounds == 31496
        assert result.num_edges == 126
        assert _digest(sorted(result.spanner.edge_set())) == "8f0c24506186ec50"
