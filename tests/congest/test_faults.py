"""Tests for the deterministic fault-injection layer (congest/faults.py)."""

from __future__ import annotations

from typing import List

import pytest

from repro.congest import (
    CongestionViolation,
    FaultPlan,
    LinkOutage,
    Message,
    NodeContext,
    NodeProgram,
    RecordingTracer,
    RoundLimitExceeded,
    Simulator,
    fault_round_limit,
)
from repro.congest.faults import fresh_fault_counters
from repro.graphs import Graph, cycle_graph, path_graph
from repro.primitives.bfs_forest import run_bfs_forest


# ----------------------------------------------------------------------
# FaultPlan determinism and validation
# ----------------------------------------------------------------------
def test_same_seed_same_schedule():
    a = FaultPlan(seed=7, drop_rate=0.3, duplicate_rate=0.2, delay_rate=0.4, max_delay=3)
    b = FaultPlan(seed=7, drop_rate=0.3, duplicate_rate=0.2, delay_rate=0.4, max_delay=3)
    events = [(r, s, t, c) for r in range(5) for s in range(4) for t in range(4) for c in range(2)]
    assert [a.drops(*e) for e in events] == [b.drops(*e) for e in events]
    assert [a.duplicates(*e) for e in events] == [b.duplicates(*e) for e in events]
    assert [a.delay(*e) for e in events] == [b.delay(*e) for e in events]


def test_different_seed_different_schedule():
    a = FaultPlan(seed=1, drop_rate=0.5)
    b = FaultPlan(seed=2, drop_rate=0.5)
    events = [(r, s, t, 0) for r in range(20) for s in range(5) for t in range(5)]
    assert [a.drops(*e) for e in events] != [b.drops(*e) for e in events]


def test_rates_roughly_respected():
    plan = FaultPlan(seed=11, drop_rate=0.25)
    events = [(r, s, t, 0) for r in range(40) for s in range(10) for t in range(10)]
    hit = sum(plan.drops(*e) for e in events)
    assert 0.18 < hit / len(events) < 0.32


def test_delay_bounds():
    plan = FaultPlan(seed=3, delay_rate=1.0, max_delay=4)
    delays = {plan.delay(r, s, t, 0) for r in range(10) for s in range(5) for t in range(5)}
    assert delays <= {1, 2, 3, 4}
    assert len(delays) > 1


def test_validation_errors():
    with pytest.raises(ValueError):
        FaultPlan(seed=0, drop_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(seed=0, delay_rate=0.5)  # max_delay missing
    with pytest.raises(ValueError):
        FaultPlan(seed=0, max_delay=-1)
    with pytest.raises(ValueError):
        FaultPlan(seed=0, crash_round=0)
    with pytest.raises(ValueError):
        FaultPlan(seed=0, crashes={3: -1})


def test_inactive_plan():
    assert not FaultPlan(seed=5).active
    assert FaultPlan(seed=5, drop_rate=0.1).active
    assert FaultPlan(seed=5, crashes={0: 2}).active
    assert FaultPlan(seed=5, link_outages=[LinkOutage(0, 1, 0, 3)]).active


def test_crash_schedule_sampling():
    plan = FaultPlan(seed=9, crash_fraction=0.25, crash_round=5)
    schedule = plan.crash_schedule(40)
    assert len(schedule) == 10
    assert all(1 <= r <= 5 for r in schedule.values())
    assert schedule == plan.crash_schedule(40)
    # Explicit crashes override sampling.
    explicit = FaultPlan(seed=9, crash_fraction=0.25, crash_round=5, crashes={0: 7})
    assert explicit.crash_schedule(40)[0] == 7


def test_link_down_symmetric_interval():
    plan = FaultPlan(seed=0, link_outages=[LinkOutage(2, 5, 3, 6)])
    assert not plan.link_down(2, 2, 5)
    assert plan.link_down(3, 2, 5)
    assert plan.link_down(6, 5, 2)
    assert not plan.link_down(7, 2, 5)
    assert not plan.link_down(4, 2, 4)


def test_retry_derives_new_schedule():
    plan = FaultPlan(seed=13, drop_rate=0.5)
    assert plan.retry(0) is plan
    retry1 = plan.retry(1)
    assert retry1.seed != plan.seed
    assert retry1.drop_rate == plan.drop_rate
    assert plan.retry(1) == retry1  # deterministic derivation
    assert plan.retry(2) != retry1


def test_describe_round_trip():
    plan = FaultPlan(
        seed=21,
        drop_rate=0.1,
        duplicate_rate=0.05,
        delay_rate=0.2,
        max_delay=3,
        crash_fraction=0.1,
        crash_round=4,
        crashes={2: 3},
        link_outages=[LinkOutage(0, 1, 1, 2)],
    )
    rebuilt = FaultPlan.from_dict(plan.describe())
    assert rebuilt == plan
    import json

    json.dumps(plan.describe())  # JSON-safe


def test_fault_round_limit_scales_with_delay():
    base = fault_round_limit(10, None)
    delayed = fault_round_limit(10, FaultPlan(seed=0, delay_rate=0.5, max_delay=3))
    assert delayed > base >= 10


# ----------------------------------------------------------------------
# Simulator integration
# ----------------------------------------------------------------------
def _forest(graph, sources, depth, plan=None):
    simulator = Simulator(graph)
    n = graph.num_vertices
    root: List = [None] * n
    dist: List = [None] * n
    parent: List = [None] * n
    from repro.primitives.bfs_forest import _ForestProgram

    programs = [_ForestProgram(v, v in set(sources), depth, (root, dist, parent)) for v in range(n)]
    run = simulator.run_protocol(programs, label="forest", nominal_rounds=depth, fault_plan=plan)
    return run, root, dist, parent


def test_no_plan_and_inactive_plan_identical():
    graph = cycle_graph(12)
    run_none, root_none, dist_none, _ = _forest(graph, [0], 4, plan=None)
    run_inactive, root_inactive, dist_inactive, _ = _forest(graph, [0], 4, plan=FaultPlan(seed=99))
    assert run_none.fault_counters is None
    assert run_inactive.fault_counters is None  # inactive plan takes the fault-free path
    assert (run_none.rounds_executed, run_none.messages_delivered, run_none.words_delivered) == (
        run_inactive.rounds_executed,
        run_inactive.messages_delivered,
        run_inactive.words_delivered,
    )
    assert root_none == root_inactive and dist_none == dist_inactive


def test_faulted_run_is_deterministic():
    graph = cycle_graph(16)
    plan = FaultPlan(seed=42, drop_rate=0.3, delay_rate=0.3, max_delay=2)
    run_a, root_a, dist_a, parent_a = _forest(graph, [0, 8], 5, plan)
    run_b, root_b, dist_b, parent_b = _forest(graph, [0, 8], 5, plan)
    assert run_a.fault_counters == run_b.fault_counters
    assert (root_a, dist_a, parent_a) == (root_b, dist_b, parent_b)
    assert run_a.rounds_executed == run_b.rounds_executed
    assert run_a.messages_delivered == run_b.messages_delivered


def test_drop_everything_strands_non_sources():
    graph = path_graph(8)
    plan = FaultPlan(seed=1, drop_rate=1.0)
    run, root, dist, _ = _forest(graph, [3], 4, plan)
    assert root == [None, None, None, 3, None, None, None, None]
    assert run.fault_counters["dropped"] > 0
    assert run.messages_delivered == 0


def test_duplicates_count_and_do_not_break_forest():
    graph = path_graph(6)
    clean_run, clean_root, clean_dist, _ = _forest(graph, [0], 5, None)
    plan = FaultPlan(seed=2, duplicate_rate=1.0)
    run, root, dist, _ = _forest(graph, [0], 5, plan)
    # Duplicates are harmless to the forest; labels match the clean run.
    assert root == clean_root and dist == clean_dist
    assert run.fault_counters["duplicated"] > 0
    assert run.messages_delivered > clean_run.messages_delivered


def test_delays_keep_parents_real_edges():
    graph = cycle_graph(10)
    plan = FaultPlan(seed=5, delay_rate=1.0, max_delay=3)
    _, root, dist, parent = _forest(graph, [0], 9, plan)
    neighbors = {v: set(graph.neighbors(v)) for v in range(10)}
    for v in range(10):
        if parent[v] is not None:
            assert parent[v] in neighbors[v]
            assert dist[v] == dist[parent[v]] + 1


def test_crash_stop_node_never_participates():
    graph = path_graph(6)
    plan = FaultPlan(seed=0, crashes={2: 0})  # crashed before round 0
    run, root, dist, _ = _forest(graph, [0], 5, plan)
    # Node 2 never forwards, so the chain stops at node 1.
    assert root[:3] == [0, 0, None]
    assert root[3:] == [None, None, None]
    assert run.fault_counters["crashed_nodes"] == 1
    assert run.fault_counters["lost_to_crash"] > 0


def test_crash_at_later_round_forwards_first():
    graph = path_graph(6)
    plan = FaultPlan(seed=0, crashes={2: 3})  # alive for rounds 0..2
    _, root, dist, _ = _forest(graph, [0], 5, plan)
    # Node 2 hears at round 2, forwards, then crashes: the chain survives.
    assert root == [0] * 6
    assert dist == [0, 1, 2, 3, 4, 5]


def test_link_outage_blocks_edge_both_ways():
    graph = path_graph(4)
    plan = FaultPlan(seed=0, link_outages=[LinkOutage(1, 2, 0, 100)])
    run, root, _, _ = _forest(graph, [0], 3, plan)
    assert root == [0, 0, None, None]
    assert run.fault_counters["link_down"] > 0


def test_congestion_audit_is_pre_fault():
    class DoubleSend(NodeProgram):
        def __init__(self, node_id: int) -> None:
            self.node_id = node_id

        def on_start(self, ctx: NodeContext) -> None:
            if self.node_id == 0:
                ctx.send(1, "a")
                ctx.send(1, "b")

        def on_round(self, ctx: NodeContext, inbox: List[Message]) -> None:
            return None

    graph = path_graph(2)
    simulator = Simulator(graph)
    # Even with every message dropped, the attempted sends violate bandwidth.
    plan = FaultPlan(seed=0, drop_rate=1.0)
    with pytest.raises(CongestionViolation):
        simulator.run_protocol([DoubleSend(0), DoubleSend(1)], fault_plan=plan)


def test_injected_duplicates_do_not_violate_bandwidth():
    graph = path_graph(3)
    plan = FaultPlan(seed=0, duplicate_rate=1.0)
    run, _, _, _ = _forest(graph, [0], 2, plan)
    assert run.congestion_violations == []
    assert run.max_edge_congestion == 1  # audit sees the attempted single send


def test_round_limit_in_fault_mode():
    class Chatterbox(NodeProgram):
        def __init__(self, node_id: int) -> None:
            self.node_id = node_id

        def on_start(self, ctx: NodeContext) -> None:
            ctx.broadcast("tick")

        def on_round(self, ctx: NodeContext, inbox: List[Message]) -> None:
            ctx.broadcast("tock")

    graph = cycle_graph(4)
    simulator = Simulator(graph)
    plan = FaultPlan(seed=0, drop_rate=0.1)
    with pytest.raises(RoundLimitExceeded):
        simulator.run_protocol(
            [Chatterbox(v) for v in range(4)], max_rounds=10, fault_plan=plan
        )
    # The simulator scrubs the aborted run; a fresh protocol still works.
    run, root, _, _ = _forest(graph, [0], 4, None)
    assert root == [0, 0, 0, 0]


def test_tracer_sees_fault_mode_rounds():
    graph = path_graph(5)
    tracer = RecordingTracer()
    simulator = Simulator(graph, tracer=tracer)
    from repro.primitives.bfs_forest import _ForestProgram

    n = 5
    shared = ([None] * n, [None] * n, [None] * n)
    programs = [_ForestProgram(v, v == 0, 4, shared) for v in range(n)]
    simulator.run_protocol(programs, fault_plan=FaultPlan(seed=3, duplicate_rate=0.5))
    assert tracer.events  # fault scheduler reports per-round deliveries


def test_fresh_counters_shape():
    counters = fresh_fault_counters()
    assert set(counters) == {
        "dropped",
        "duplicated",
        "delayed",
        "delay_rounds",
        "link_down",
        "crashed_nodes",
        "lost_to_crash",
    }
    assert all(v == 0 for v in counters.values())


def test_run_bfs_forest_accepts_plan_and_counts():
    graph = cycle_graph(12)
    simulator = Simulator(graph)
    forest = run_bfs_forest(
        simulator, sources=[0], depth=6, fault_plan=FaultPlan(seed=8, drop_rate=0.4)
    )
    assert forest.run.fault_counters is not None
    assert forest.run.fault_counters["dropped"] > 0
