"""Tests for the stage orchestration of ``scripts/ci_check.py``.

The stage commands are never actually executed here: ``subprocess.run`` is
stubbed out, so the tests pin the *orchestration* -- stage ordering, ``--fast``
and ``--junitxml`` handling, first-failure short-circuiting, exit-status
propagation, GitHub Actions annotations and the step-summary table.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
CI_CHECK_PATH = REPO_ROOT / "scripts" / "ci_check.py"

EXPECTED_STAGE_ORDER = [
    "lint (ruff)",
    "tier-1 tests",
    "tier-1 tests (pure-python kernel)",
    "golden counters",
    "phase micro-benchmarks (quick mode)",
    "capacity ladder (quick mode)",
    "capacity ladder (quick mode, numpy kernel)",
    "fault injection (quick mode)",
    "dynamic churn (quick mode)",
    "store-corruption smoke",
    "serve smoke (quick mode)",
    "registry completeness",
    "experiments-md drift",
]


@pytest.fixture(scope="module")
def ci_check():
    spec = importlib.util.spec_from_file_location("ci_check_under_test", CI_CHECK_PATH)
    module = importlib.util.module_from_spec(spec)
    # The dataclass machinery resolves string annotations through
    # sys.modules[cls.__module__], so the module must be registered before
    # execution.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


@pytest.fixture()
def no_github(monkeypatch):
    monkeypatch.delenv("GITHUB_ACTIONS", raising=False)
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)


@pytest.fixture()
def with_ruff(ci_check, monkeypatch):
    """Pretend ruff is installed so the stage plan is environment-independent."""
    monkeypatch.setattr(ci_check.shutil, "which", lambda name: "/usr/bin/ruff")


@pytest.fixture()
def without_ruff(ci_check, monkeypatch):
    monkeypatch.setattr(ci_check.shutil, "which", lambda name: None)


def _args(**overrides):
    base = {"fast": False, "junitxml": None, "snapshot": None}
    base.update(overrides)
    return SimpleNamespace(**base)


class FakeRun:
    """subprocess.run stub recording commands and scripting exit codes."""

    def __init__(self, returncodes=None):
        self.calls = []
        self.returncodes = dict(returncodes or {})

    def __call__(self, cmd, cwd=None, env=None):
        self.calls.append(list(cmd))
        for needle, code in self.returncodes.items():
            if any(needle in part for part in cmd):
                return SimpleNamespace(returncode=code)
        return SimpleNamespace(returncode=0)


class TestStagePlan:
    def test_stage_order_and_names(self, ci_check, with_ruff):
        plan = ci_check.stage_plan(_args(), "snap.json")
        assert [name for name, _ in plan] == EXPECTED_STAGE_ORDER
        assert all(cmd is not None for _, cmd in plan)

    def test_lint_stage_skipped_without_ruff(self, ci_check, without_ruff):
        plan = dict(ci_check.stage_plan(_args(), "snap.json"))
        assert plan["lint (ruff)"] is None

    def test_lint_stage_runs_ruff_check_when_installed(self, ci_check, with_ruff):
        plan = dict(ci_check.stage_plan(_args(), "snap.json"))
        lint = plan["lint (ruff)"]
        assert lint[:2] == ["ruff", "check"]

    def test_registry_completeness_stage_invokes_the_gate_script(self, ci_check):
        plan = dict(ci_check.stage_plan(_args(), "snap.json"))
        gate = plan["registry completeness"]
        assert any("registry_check.py" in part for part in gate)

    def test_fast_skips_only_the_pytest_stages(self, ci_check, with_ruff):
        plan = ci_check.stage_plan(_args(fast=True), "snap.json")
        assert [name for name, _ in plan] == EXPECTED_STAGE_ORDER
        commands = dict(plan)
        assert commands["tier-1 tests"] is None
        assert commands["tier-1 tests (pure-python kernel)"] is None
        assert all(
            commands[name] is not None
            for name in EXPECTED_STAGE_ORDER
            if name not in ("tier-1 tests", "tier-1 tests (pure-python kernel)")
        )

    def test_junitxml_passes_through_to_default_pytest_stage_only(self, ci_check, with_ruff):
        plan = dict(ci_check.stage_plan(_args(junitxml="report.xml"), "snap.json"))
        assert "--junitxml=report.xml" in plan["tier-1 tests"]
        for name in EXPECTED_STAGE_ORDER:
            if name == "tier-1 tests":
                continue
            assert not any("junitxml" in part for part in plan[name])

    def test_pure_python_stage_pins_the_kernel_env(self, ci_check):
        plan = dict(ci_check.stage_plan(_args(), "snap.json"))
        pure = plan["tier-1 tests (pure-python kernel)"]
        assert pure[0] == "REPRO_KERNEL=python"
        assert "pytest" in pure

    def test_numpy_capacity_stage_forces_the_kernel_flag(self, ci_check):
        plan = dict(ci_check.stage_plan(_args(), "snap.json"))
        capacity = plan["capacity ladder (quick mode, numpy kernel)"]
        assert "--kernel" in capacity
        assert "numpy" in capacity
        assert ci_check.QUICK_CAPACITY_BUDGET in capacity

    def test_run_stage_applies_leading_env_assignments(self, ci_check, monkeypatch, no_github):
        seen = {}

        def fake_run(cmd, cwd=None, env=None):
            seen["cmd"] = list(cmd)
            seen["env"] = env
            from types import SimpleNamespace

            return SimpleNamespace(returncode=0)

        monkeypatch.setattr(ci_check.subprocess, "run", fake_run)
        result = ci_check.run_stage("env demo", ["FOO_BAR=baz", "true"])
        assert result.ok
        assert seen["cmd"] == ["true"]
        assert seen["env"]["FOO_BAR"] == "baz"

    def test_snapshot_path_reaches_the_golden_stage(self, ci_check):
        plan = dict(ci_check.stage_plan(_args(), "kept-snapshot.json"))
        golden = plan["golden counters"]
        assert "kept-snapshot.json" in golden
        assert str(REPO_ROOT / "BENCH_seed.json") in golden

    def test_capacity_stage_is_quick_mode(self, ci_check):
        plan = dict(ci_check.stage_plan(_args(), "snap.json"))
        capacity = plan["capacity ladder (quick mode)"]
        assert "capacity" in capacity
        assert ci_check.QUICK_CAPACITY_BUDGET in capacity
        assert ci_check.QUICK_CAPACITY_MAX_N in capacity

    def test_chaos_stage_is_quick_mode_with_a_task_timeout(self, ci_check):
        plan = dict(ci_check.stage_plan(_args(), "snap.json"))
        chaos = plan["fault injection (quick mode)"]
        assert "chaos" in chaos
        assert "chaos-primitives" in chaos
        assert ci_check.QUICK_CHAOS_TASK_TIMEOUT in chaos

    def test_dynamic_stage_is_quick_mode_with_a_task_timeout(self, ci_check):
        plan = dict(ci_check.stage_plan(_args(), "snap.json"))
        dynamic = plan["dynamic churn (quick mode)"]
        assert "dynamic" in dynamic
        assert "dynamic-churn" in dynamic
        assert ci_check.QUICK_DYNAMIC_TASK_TIMEOUT in dynamic

    def test_store_smoke_stage_runs_the_corruption_self_test(self, ci_check):
        plan = dict(ci_check.stage_plan(_args(), "snap.json"))
        smoke = plan["store-corruption smoke"]
        assert "chaos" in smoke
        assert "--store-smoke" in smoke

    def test_serve_smoke_stage_is_quick_mode_with_the_check_gate(self, ci_check):
        plan = dict(ci_check.stage_plan(_args(), "snap.json"))
        serve = plan["serve smoke (quick mode)"]
        assert "serve" in serve
        assert ci_check.QUICK_SERVE_REQUESTS in serve
        assert "--check" in serve


class TestMainOrchestration:
    def test_all_stages_pass(self, ci_check, monkeypatch, capsys, no_github, with_ruff):
        fake = FakeRun()
        monkeypatch.setattr(ci_check.subprocess, "run", fake)
        assert ci_check.main([]) == 0
        # One executed command per stage, in the declared order.
        assert len(fake.calls) == len(EXPECTED_STAGE_ORDER)
        assert "all checks passed" in capsys.readouterr().out

    def test_missing_ruff_skips_lint_without_failing(self, ci_check, monkeypatch, capsys, no_github, without_ruff):
        fake = FakeRun()
        monkeypatch.setattr(ci_check.subprocess, "run", fake)
        assert ci_check.main([]) == 0
        assert len(fake.calls) == len(EXPECTED_STAGE_ORDER) - 1
        assert "lint (ruff): skipped" in capsys.readouterr().out

    def test_fast_mode_runs_everything_but_pytest(self, ci_check, monkeypatch, capsys, no_github, with_ruff):
        fake = FakeRun()
        monkeypatch.setattr(ci_check.subprocess, "run", fake)
        assert ci_check.main(["--fast"]) == 0
        assert len(fake.calls) == len(EXPECTED_STAGE_ORDER) - 2
        out = capsys.readouterr().out
        assert "tier-1 tests: skipped" in out

    def test_nonzero_stage_fails_run_and_skips_the_rest(self, ci_check, monkeypatch, capsys, no_github, with_ruff):
        fake = FakeRun(returncodes={"bench_compare.py": 3})
        monkeypatch.setattr(ci_check.subprocess, "run", fake)
        assert ci_check.main([]) == 1
        # lint + both tier-1 stages + golden ran; every later stage skipped.
        assert len(fake.calls) == 4
        out = capsys.readouterr().out
        assert "FAILED (exit 3)" in out
        assert "phase micro-benchmarks (quick mode): skipped (earlier stage failed)" in out
        assert "registry completeness: skipped (earlier stage failed)" in out
        assert "CHECKS FAILED" in out

    def test_snapshot_file_is_kept_when_requested(self, ci_check, monkeypatch, tmp_path, no_github, with_ruff):
        fake = FakeRun()
        monkeypatch.setattr(ci_check.subprocess, "run", fake)
        snapshot = tmp_path / "golden.json"
        snapshot.write_text("{}", encoding="utf-8")
        assert ci_check.main(["--snapshot", str(snapshot)]) == 0
        assert snapshot.exists()
        golden_call = fake.calls[3]
        assert str(snapshot) in golden_call


class TestGithubIntegration:
    def test_annotations_emitted_under_github_actions(self, ci_check, monkeypatch, capsys):
        monkeypatch.setenv("GITHUB_ACTIONS", "true")
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        fake = FakeRun(returncodes={"generate_experiments_md.py": 2})
        monkeypatch.setattr(ci_check.subprocess, "run", fake)
        assert ci_check.main([]) == 1
        out = capsys.readouterr().out
        assert "::group::tier-1 tests" in out
        assert "::endgroup::" in out
        assert "::error title=ci_check stage failed::" in out
        assert "'experiments-md drift'" in out

    def test_step_summary_table_written(self, ci_check, monkeypatch, tmp_path, capsys):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_ACTIONS", "true")
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        fake = FakeRun(returncodes={"bench_phases.py": 1})
        monkeypatch.setattr(ci_check.subprocess, "run", fake)
        assert ci_check.main(["--fast"]) == 1
        text = summary.read_text(encoding="utf-8")
        assert "### ci_check stage outcomes" in text
        assert "| tier-1 tests | ⏭️ skipped | - |" in text
        assert "❌ failed | 1" in text
        # Stages after the failure are reported as skipped.
        assert text.count("skipped") >= 3

    def test_render_step_summary_is_one_row_per_stage(self, ci_check):
        results = [
            ci_check.StageResult(name="a", status="ok", returncode=0, seconds=1.0),
            ci_check.StageResult(name="b", status="failed", returncode=2, seconds=0.5),
            ci_check.StageResult(name="c", status="skipped"),
        ]
        table = ci_check.render_step_summary(results)
        assert table.count("\n| ") >= 3
        assert "| a | ✅ ok | 0 | 1.0 |" in table
        assert "| b | ❌ failed | 2 | 0.5 |" in table
        assert "| c | ⏭️ skipped | - | 0.0 |" in table
