"""Tests for the GraphDelta value type and its apply helpers."""

from __future__ import annotations

import json

import pytest

from repro.dynamic import GraphDelta, apply_delta, delta_summary, replay_deltas
from repro.graphs import Graph


class TestCanonicalForm:
    def test_edges_are_normalized_deduped_and_sorted(self):
        delta = GraphDelta.make(add=[(3, 1), (1, 3), (0, 2)], remove=[(5, 4)])
        assert delta.add == ((0, 2), (1, 3))
        assert delta.remove == ((4, 5),)

    def test_self_loops_rejected_at_build_time(self):
        with pytest.raises(ValueError):
            GraphDelta.make(add=[(2, 2)])

    def test_overlapping_sides_rejected(self):
        with pytest.raises(ValueError):
            GraphDelta.make(add=[(0, 1)], remove=[(1, 0)])

    def test_counters_and_emptiness(self):
        delta = GraphDelta.make(add=[(0, 1), (1, 2)], remove=[(2, 3)])
        assert (delta.num_add, delta.num_remove, delta.num_edges) == (2, 1, 3)
        assert not delta.is_empty
        assert GraphDelta.make().is_empty

    def test_touched_vertices_sorted_union(self):
        delta = GraphDelta.make(add=[(4, 1)], remove=[(2, 0)])
        assert delta.touched_vertices() == (0, 1, 2, 4)

    def test_value_semantics(self):
        a = GraphDelta.make(add=[(1, 0)])
        b = GraphDelta.make(add=[(0, 1)])
        assert a == b
        assert hash(a) == hash(b)


class TestJsonRoundTrip:
    def test_to_dict_is_json_safe_and_round_trips(self):
        delta = GraphDelta.make(add=[(0, 1), (2, 3)], remove=[(4, 5)])
        payload = json.loads(json.dumps(delta.to_dict()))
        assert GraphDelta.from_dict(payload) == delta


class TestApply:
    def test_apply_removes_then_adds_in_batches(self):
        g = Graph(5, [(0, 1), (1, 2)])
        version = g.version
        delta = GraphDelta.make(add=[(2, 3), (3, 4)], remove=[(0, 1)])
        added, removed = apply_delta(g, delta)
        assert (added, removed) == (2, 1)
        assert g.edge_set() == {(1, 2), (2, 3), (3, 4)}
        # One invalidation per non-empty side, not per edge.
        assert g.version == version + 2

    def test_noop_delta_does_not_invalidate(self):
        g = Graph(4, [(0, 1)])
        csr = g.csr()
        version = g.version
        added, removed = apply_delta(
            g, GraphDelta.make(add=[(0, 1)], remove=[(2, 3)])
        )
        assert (added, removed) == (0, 0)
        assert g.version == version
        assert g.csr() is csr

    def test_replay_copies_the_input_graph(self):
        g = Graph(4, [(0, 1)])
        final = replay_deltas(g, [GraphDelta.make(add=[(1, 2)])])
        assert g.edge_set() == {(0, 1)}
        assert final.edge_set() == {(0, 1), (1, 2)}

    def test_delta_summary_counts(self):
        deltas = [
            GraphDelta.make(add=[(0, 1), (1, 2)]),
            GraphDelta.make(remove=[(0, 1)]),
        ]
        assert delta_summary(deltas) == {
            "steps": 2,
            "edges_added": 2,
            "edges_removed": 1,
        }
