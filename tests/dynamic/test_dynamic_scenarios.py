"""Tests for the registered dynamic scenarios and their pipeline contract."""

from __future__ import annotations

import pytest

from repro.analysis import render_dynamic_summary
from repro.cli import main
from repro.dynamic.scenarios import (
    CHURN_KINDS,
    dynamic_churn_spec,
    dynamic_growth_spec,
    incremental_algorithm_names,
)
from repro.experiments import all_specs, get_spec, run_scenario


def quick_churn(**overrides):
    kwargs = dict(size=40, steps=3, batch_size=3, workload_seed=23)
    kwargs.update(overrides)
    return dynamic_churn_spec(**kwargs)


def quick_growth(**overrides):
    kwargs = dict(size=40, steps=4, batch_size=3, workload_seed=41)
    kwargs.update(overrides)
    return dynamic_growth_spec(**kwargs)


class TestRegistration:
    def test_both_scenarios_are_registered_under_the_dynamic_tag(self):
        names = [spec.name for spec in all_specs("dynamic")]
        assert names == ["dynamic-churn", "dynamic-growth"]

    def test_churn_carries_the_dynamic_tier_contract_checks(self):
        assert set(get_spec("dynamic-churn").checks) == {
            "guarantee-preserved-every-step",
            "spanner-stays-subgraph",
            "rebuild-equivalence-sparseness",
            "decisions-recorded",
        }

    def test_growth_adds_the_crossover_check(self):
        assert "incremental-beats-rebuild" in get_spec("dynamic-growth").checks

    def test_matrix_covers_kinds_times_incremental_algorithms(self):
        spec = get_spec("dynamic-churn")
        points = spec.task_params()
        names = incremental_algorithm_names(int(spec.defaults["size"]))
        assert len(points) == len(CHURN_KINDS) * len(names)
        assert {p["kind"] for p in points} == set(CHURN_KINDS)
        assert {p["algorithm"] for p in points} == set(names)

    def test_distributed_engine_is_not_in_the_matrix(self):
        spec = get_spec("dynamic-growth")
        assert all(
            p["algorithm"] != "new-distributed" for p in spec.task_params()
        )


class TestChurnScenario:
    @pytest.fixture(scope="class")
    def record(self):
        return run_scenario(quick_churn())

    def test_every_check_passes(self, record):
        assert record.all_checks_passed, record.checks

    def test_guarantee_holds_after_every_step_in_every_row(self, record):
        for row in record.rows:
            assert row["steps_ok"]
            assert all(step["guarantee_ok"] for step in row["steps"])

    def test_rows_carry_the_rebuild_equivalence_fields(self, record):
        for row in record.rows:
            assert row["rebuild_guarantee_ok"] is True
            assert 0 < row["sparseness_ratio"] <= 2.0
            assert row["trace_fingerprint"]

    def test_series_track_the_matrix(self, record):
        rows = len(record.rows)
        for name in ("incremental-work", "rebuild-proxy-work", "sparseness-ratio"):
            assert len(record.series[name]) == rows

    def test_render_dynamic_summary_tabulates_every_row(self, record):
        text = render_dynamic_summary(record)
        assert "dynamic summary: dynamic-churn" in text
        for algorithm in {row["algorithm"] for row in record.rows}:
            assert algorithm in text


class TestGrowthScenario:
    @pytest.fixture(scope="class")
    def record(self):
        return run_scenario(quick_growth())

    def test_every_check_passes(self, record):
        assert record.all_checks_passed, record.checks

    def test_growth_rows_are_insert_only(self, record):
        for row in record.rows:
            assert all(step["num_remove"] == 0 for step in row["steps"])

    def test_touched_certificate_rows_beat_the_rebuild_proxy(self, record):
        touched = [r for r in record.rows if r["certificate"] == "touched"]
        assert touched
        for row in touched:
            assert row["incremental_work"] < row["rebuild_proxy_work"]
            assert row["rebuilds"] == 0


class TestDeterminism:
    """Acceptance criterion: churn traces are identical across --jobs 1/N."""

    def test_churn_record_is_byte_identical_across_runs_and_jobs(self):
        spec = quick_churn()
        serial_one = run_scenario(spec, jobs=1).to_canonical_json()
        serial_two = run_scenario(spec, jobs=1).to_canonical_json()
        parallel = run_scenario(spec, jobs=4).to_canonical_json()
        assert serial_one == serial_two
        assert serial_one == parallel

    def test_growth_record_is_byte_identical_under_parallel_execution(self):
        serial = run_scenario(quick_growth(), jobs=1).to_canonical_json()
        parallel = run_scenario(quick_growth(), jobs=3).to_canonical_json()
        assert serial == parallel

    def test_workload_seed_changes_the_traces(self):
        one = run_scenario(quick_churn(workload_seed=23))
        two = run_scenario(quick_churn(workload_seed=24))
        prints = lambda rec: [row["trace_fingerprint"] for row in rec.rows]
        assert prints(one) != prints(two)


class TestCli:
    def test_repro_dynamic_runs_the_tier(self, tmp_path, capsys):
        records = tmp_path / "dynamic.json"
        code = main(
            [
                "dynamic",
                "--scenario",
                "dynamic-churn",
                "--records",
                str(records),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "dynamic summary: dynamic-churn" in out
        assert records.exists()

    def test_unknown_scenario_filter_fails_cleanly(self, capsys):
        assert main(["dynamic", "--scenario", "dynamic-nonsense"]) == 2
