"""Tests for the churn traces: determinism, purity and per-kind shape."""

from __future__ import annotations

import pytest

from repro.dynamic import ChurnTrace, TRACE_KINDS, make_trace, trace_from_params


def trace(kind, **overrides):
    kwargs = dict(kind=kind, family="sparse_gnp", size=48, steps=4, batch_size=3, seed=7)
    kwargs.update(overrides)
    return ChurnTrace(**kwargs)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ChurnTrace(kind="avalanche")

    def test_degenerate_shape_rejected(self):
        with pytest.raises(ValueError):
            ChurnTrace(kind="growth", steps=0)


class TestDeterminism:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_iterating_twice_is_byte_identical(self, kind):
        t = trace(kind)
        first = [d.to_dict() for d in t.deltas()]
        second = [d.to_dict() for d in t.deltas()]
        assert first == second
        assert len(first) == t.steps

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_equal_traces_share_fingerprint(self, kind):
        assert trace(kind).fingerprint() == trace(kind).fingerprint()

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_seed_changes_the_trace(self, kind):
        assert trace(kind).fingerprint() != trace(kind, seed=8).fingerprint()

    def test_kinds_diverge_on_the_same_seed(self):
        prints = {trace(kind).fingerprint() for kind in TRACE_KINDS}
        assert len(prints) == len(TRACE_KINDS)


class TestKindShapes:
    def test_growth_is_insert_only_and_ends_at_the_base_graph(self):
        t = trace("growth")
        assert all(d.num_remove == 0 for d in t.deltas())
        assert t.final_graph() == t.base_graph()
        assert t.initial_graph().num_edges < t.base_graph().num_edges

    def test_uniform_keeps_the_edge_count_balanced(self):
        t = trace("uniform")
        initial = t.initial_graph()
        assert initial == t.base_graph()
        final = t.final_graph()
        # Every step removes and adds the same batch size (up to bounded
        # rejection-sampling shortfalls), so the count stays in a tight band.
        assert abs(final.num_edges - initial.num_edges) <= t.steps * t.batch_size

    def test_sliding_window_keeps_a_fixed_live_window(self):
        t = trace("sliding-window")
        graph = t.initial_graph()
        window = graph.num_edges
        base_edges = t.base_graph().edge_set()
        for delta in t.deltas():
            from repro.dynamic import apply_delta

            apply_delta(graph, delta)
            assert graph.num_edges == window
            assert graph.edge_set() <= base_edges

    def test_hotspot_additions_touch_the_hot_set(self):
        t = trace("hotspot")
        hot = set(t._hot_vertices(t.base_graph().num_vertices))
        for delta in t.deltas():
            for u, v in delta.add:
                assert u in hot or v in hot


class TestHelpers:
    def test_make_trace_forwards_kwargs(self):
        t = make_trace("growth", size=32, steps=2, batch_size=2, seed=3)
        assert (t.kind, t.size, t.steps) == ("growth", 32, 2)

    def test_trace_from_params_matches_explicit_construction(self):
        params = {
            "kind": "uniform",
            "family": "sparse_gnp",
            "size": 48,
            "steps": 4,
            "batch_size": 3,
            "workload_seed": 7,
        }
        assert trace_from_params(params) == trace("uniform")

    def test_describe_is_json_safe(self):
        import json

        for kind in TRACE_KINDS:
            json.dumps(trace(kind).describe())
