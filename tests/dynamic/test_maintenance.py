"""Tests for DynamicSpanner: absorption, repair, certificates, rebuilds.

Includes the PR 8 property test: after a full churn trace, the maintained
spanner satisfies the same declared guarantee as a from-scratch rebuild on
the final graph -- under both the pure-Python and the NumPy kernel pins.
"""

from __future__ import annotations

import json

import pytest

import repro.kernels as kernels
from repro.analysis.stretch import evaluate_stretch
from repro.dynamic import ChurnTrace, DynamicSpanner, GraphDelta, run_trace
from repro.graphs import Graph

KERNEL_MODES = [
    kernels.KERNEL_PYTHON,
    pytest.param(
        kernels.KERNEL_NUMPY,
        marks=pytest.mark.skipif(
            not kernels.numpy_available(), reason="numpy/scipy not installed"
        ),
    ),
]

#: The maintenance matrix the property test sweeps: one engine, one
#: near-additive baseline, both multiplicative baselines.
ALGORITHMS = ("new-centralized", "elkin-peleg-2001", "baswana-sen", "greedy")


@pytest.fixture()
def kernel(monkeypatch):
    """Pin the kernel backend for one test; globals restored afterwards."""
    monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)

    def switch(mode):
        monkeypatch.setattr(kernels, "_requested", mode)

    return switch


def small_trace(kind, seed=11):
    return ChurnTrace(
        kind=kind, family="sparse_gnp", size=48, steps=4, batch_size=3, seed=seed
    )


class TestConstruction:
    def test_distributed_engine_is_rejected(self):
        with pytest.raises(ValueError, match="supports_incremental"):
            DynamicSpanner("new-distributed", Graph(4, [(0, 1)]))

    def test_unknown_certificate_mode_rejected(self):
        with pytest.raises(ValueError, match="certificate"):
            DynamicSpanner(
                "baswana-sen", Graph(4, [(0, 1)]), certificate="psychic"
            )

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="rebuild_budget"):
            DynamicSpanner("baswana-sen", Graph(4, [(0, 1)]), rebuild_budget=-1)

    def test_certificate_defaults_follow_the_guarantee(self):
        graph = small_trace("growth").initial_graph()
        assert DynamicSpanner("greedy", graph).certificate == "touched"
        assert DynamicSpanner("new-centralized", graph).certificate == "full"

    def test_caller_graph_is_never_mutated(self):
        graph = small_trace("growth").initial_graph()
        edges = graph.edge_set()
        dynamic = DynamicSpanner("greedy", graph)
        dynamic.maintain(GraphDelta.make(remove=[next(iter(edges))]))
        assert graph.edge_set() == edges


class TestMaintain:
    def test_noop_delta_is_absorbed_for_free(self):
        dynamic = DynamicSpanner("greedy", small_trace("growth").initial_graph())
        present = next(iter(dynamic.graph.edges()))
        version = dynamic.graph.version
        record = dynamic.maintain(GraphDelta.make(add=[present]))
        assert record.decision == "absorbed"
        assert record.distance_queries == 0
        assert record.work_units == 0
        assert dynamic.graph.version == version

    def test_budget_zero_degenerates_to_rebuild_every_step(self):
        trace = small_trace("uniform")
        dynamic = run_trace("baswana-sen", trace, seed=5, rebuild_budget=0)
        assert all(r.decision == "rebuild" for r in dynamic.records)
        assert all(
            r.rebuild_reason in ("budget-exhausted", "certificate-failed")
            for r in dynamic.records
        )
        assert dynamic.rebuild_count == len(dynamic.records)
        assert dynamic.ops_since_rebuild == 0

    def test_growth_on_multiplicative_never_rebuilds(self):
        dynamic = run_trace("greedy", small_trace("growth"), seed=5)
        assert dynamic.rebuild_count == 0
        assert all(not r.rebuilt for r in dynamic.records)

    def test_counters_are_consistent_and_json_safe(self):
        dynamic = run_trace("baswana-sen", small_trace("sliding-window"), seed=5)
        assert len(dynamic.records) == 4
        for record in dynamic.records:
            payload = json.loads(json.dumps(record.to_dict()))
            assert payload["decision"] in ("absorbed", "repaired", "rebuild")
            assert payload["work_units"] == record.work_units
            assert (payload["rebuild_reason"] is not None) == record.rebuilt
        assert dynamic.total_work_units() == sum(
            r.work_units for r in dynamic.records
        )

    def test_spanner_stays_subgraph_throughout(self):
        trace = small_trace("hotspot")
        dynamic = DynamicSpanner("greedy", trace.initial_graph(), seed=5)
        for delta in trace.deltas():
            dynamic.maintain(delta)
            assert dynamic.spanner.is_subgraph_of(dynamic.graph)

    def test_guarantee_holds_after_every_step(self):
        trace = small_trace("uniform")
        dynamic = DynamicSpanner("new-centralized", trace.initial_graph(), seed=5)
        for delta in trace.deltas():
            dynamic.maintain(delta)
            report = evaluate_stretch(
                dynamic.graph, dynamic.spanner, guarantee=dynamic.guarantee
            )
            assert report.satisfies_guarantee


class TestFullTraceProperty:
    """The PR 8 satellite: maintained == rebuilt, guarantee-wise, per kernel."""

    @pytest.mark.parametrize("mode", KERNEL_MODES)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("kind", ("growth", "uniform"))
    def test_full_trace_matches_rebuild_guarantee(self, kernel, mode, algorithm, kind):
        kernel(mode)
        trace = small_trace(kind)
        dynamic = run_trace(algorithm, trace, seed=3)
        maintained = evaluate_stretch(
            dynamic.graph, dynamic.spanner, guarantee=dynamic.guarantee
        )
        assert maintained.satisfies_guarantee
        rebuild = dynamic.rebuild_equivalent()
        rebuilt = evaluate_stretch(
            rebuild.graph, rebuild.spanner, guarantee=dynamic.guarantee
        )
        assert rebuilt.satisfies_guarantee
        assert dynamic.graph == trace.final_graph()

    @pytest.mark.parametrize("mode", KERNEL_MODES)
    def test_maintenance_decisions_match_across_kernels(self, kernel, mode):
        kernel(mode)
        dynamic = run_trace("greedy", small_trace("uniform"), seed=3)
        decisions = [(r.decision, r.edges_inserted, r.repair_edges) for r in dynamic.records]
        # Pinned against the pure-python reference run of the same trace:
        # the kernels must agree on every decision, not merely on validity.
        kernel(kernels.KERNEL_PYTHON)
        reference = run_trace("greedy", small_trace("uniform"), seed=3)
        assert decisions == [
            (r.decision, r.edges_inserted, r.repair_edges) for r in reference.records
        ]
