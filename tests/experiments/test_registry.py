"""Tests for the declarative scenario registry."""

from __future__ import annotations

import pytest

from repro.experiments import all_specs, get_spec, scenario_names
from repro.experiments.registry import (
    ScenarioSpec,
    canonical_json,
    derive_seed,
    fingerprint_graph,
    register,
)
from repro.experiments.results import ExperimentRecord
from repro.graphs import gnp_random_graph


def _dummy_task(params, seed):
    return {"value": params["x"]}


def _dummy_merge(defaults, payloads):
    return ExperimentRecord(name="dummy", description="d")


def _make_spec(name="dummy-spec", **kwargs):
    base = dict(
        name=name,
        description="a test spec",
        task=_dummy_task,
        merge=_dummy_merge,
        defaults={"x": 1},
    )
    base.update(kwargs)
    return ScenarioSpec(**base)


EXPECTED_SCENARIOS = {
    "table1",
    "table2",
    "scaling",
    "ablation-epsilon",
    "ablation-rho",
    "ablation-kappa",
    "family-small-world",
    "family-geometric",
    "family-multi-component",
    "family-powerlaw",
    "family-hyperbolic",
    "family-torus",
    "scaling-large",
    "scaling-growth",
} | {f"figure{i}" for i in range(1, 9)}


class TestBuiltinRegistry:
    def test_every_expected_scenario_registered(self):
        assert EXPECTED_SCENARIOS <= set(scenario_names())

    def test_scaling_and_ablations_runnable_by_name(self):
        # The old CLI registry hardwired tables/figures only; every scenario
        # must now resolve by name.
        for name in ("scaling", "ablation-epsilon", "ablation-rho", "ablation-kappa"):
            spec = get_spec(name)
            assert spec.task_params(), name

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_spec("no-such-scenario")

    def test_tag_filtering(self):
        figures = {spec.name for spec in all_specs("figure")}
        assert figures == {f"figure{i}" for i in range(1, 9)}
        families = {spec.name for spec in all_specs("family")}
        assert families == {
            "family-small-world",
            "family-geometric",
            "family-multi-component",
            "family-powerlaw",
            "family-hyperbolic",
            "family-torus",
        }
        scale_tier = {spec.name for spec in all_specs("scale-tier")}
        assert scale_tier == {"scaling-large", "scaling-growth"}
        by_name = [spec.name for spec in all_specs("table1")]
        assert by_name == ["table1"]

    def test_every_spec_has_description_and_version(self):
        for spec in all_specs():
            assert spec.description, spec.name
            assert spec.version, spec.name


class TestScenarioSpec:
    def test_duplicate_registration_rejected(self):
        spec = _make_spec(name="duplicate-test-spec")
        register(spec)
        with pytest.raises(ValueError):
            register(_make_spec(name="duplicate-test-spec"))

    def test_grid_expansion_is_cartesian_and_ordered(self):
        spec = _make_spec(
            defaults={"c": 0},
            grid={"a": [1, 2], "b": ["x", "y"]},
            matrix={"engine": ["e1", "e2"]},
        )
        points = spec.task_params()
        assert len(points) == 8
        assert points[0] == {"c": 0, "a": 1, "b": "x", "engine": "e1"}
        assert points[-1] == {"c": 0, "a": 2, "b": "y", "engine": "e2"}

    def test_no_axes_yields_single_task(self):
        assert _make_spec().task_params() == [{"x": 1}]

    def test_custom_expand_wins(self):
        spec = _make_spec(
            defaults={"sizes": [10, 20], "x": 0},
            expand=lambda defaults: [
                {"x": s + i} for i, s in enumerate(defaults.pop("sizes"))
            ],
        )
        assert spec.task_params() == [{"x": 10}, {"x": 21}]

    def test_with_defaults_override(self):
        spec = _make_spec()
        assert spec.with_defaults(x=5).defaults["x"] == 5
        with pytest.raises(KeyError):
            spec.with_defaults(unknown=1)

    def test_workload_fingerprint_content_addressed(self):
        spec = _make_spec(
            defaults={"x": 1},
            workload=lambda params: gnp_random_graph(20, 0.2, seed=params["x"]),
        )
        fp_same = spec.workload_fingerprint({"x": 1})
        assert fp_same == spec.workload_fingerprint({"x": 1})
        assert fp_same != spec.workload_fingerprint({"x": 2})

    def test_fingerprint_without_workload_uses_params(self):
        spec = _make_spec()
        assert spec.workload_fingerprint({"x": 1}).startswith("params:")


class TestHelpers:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_derive_seed_stable_and_param_sensitive(self):
        assert derive_seed("s", {"a": 1}) == derive_seed("s", {"a": 1})
        assert derive_seed("s", {"a": 1}) != derive_seed("s", {"a": 2})
        assert derive_seed("s", {"a": 1}) != derive_seed("t", {"a": 1})

    def test_fingerprint_graph_sensitive_to_edges(self):
        a = gnp_random_graph(15, 0.2, seed=1)
        b = gnp_random_graph(15, 0.2, seed=2)
        assert fingerprint_graph(a) == fingerprint_graph(a.copy())
        assert fingerprint_graph(a) != fingerprint_graph(b)
