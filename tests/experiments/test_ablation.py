"""Tests for the ablation experiments."""

from __future__ import annotations

import pytest

from repro.experiments import run_epsilon_ablation, run_kappa_ablation, run_rho_ablation
from repro.graphs import planted_partition_graph


@pytest.fixture(scope="module")
def small_workload():
    return planted_partition_graph(5, 8, 0.6, 0.03, seed=1)


def test_epsilon_ablation_checks_pass(small_workload):
    record = run_epsilon_ablation(epsilons=(0.1, 0.3, 0.9), graph=small_workload, sample_pairs=60)
    assert record.all_checks_passed, record.checks
    assert len(record.rows) == 3
    betas = record.series["beta"]
    assert betas[0] >= betas[-1]


def test_rho_ablation_checks_pass(small_workload):
    record = run_rho_ablation(rhos=(1 / 3, 0.5), graph=small_workload, sample_pairs=60)
    assert record.all_checks_passed, record.checks
    assert all("round_bound" in row for row in record.rows)


def test_kappa_ablation_checks_pass(small_workload):
    record = run_kappa_ablation(kappas=(2, 3), graph=small_workload, sample_pairs=60)
    assert record.all_checks_passed, record.checks
    assert [row["kappa"] for row in record.rows] == [2, 3]


def test_empty_sweep_yields_empty_record():
    record = run_epsilon_ablation(epsilons=())
    assert record.rows == []
    assert record.all_checks_passed
