"""Integration tests for the table/figure experiment modules (small instances)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ALL_FIGURES,
    build_result,
    default_parameters,
    run_all_figures,
    run_scaling,
    run_table1,
    run_table2,
)
from repro.graphs import planted_partition_graph


@pytest.fixture(scope="module")
def figure_result():
    graph = planted_partition_graph(6, 10, 0.6, 0.03, seed=5)
    return build_result(graph, default_parameters(), engine="centralized")


class TestTableExperiments:
    def test_table1_shape_checks_pass(self):
        record = run_table1(sizes=(60, 120), sample_pairs=60)
        assert record.all_checks_passed, record.checks
        assert any(row.get("kind") == "theory" for row in record.rows)
        assert any(row.get("kind") == "measured" for row in record.rows)
        assert len(record.series["rounds-new"]) == 2

    def test_table2_shape_checks_pass(self):
        record = run_table2(n=80, sample_pairs=60, include_distributed=False, include_greedy=True)
        assert record.all_checks_passed, record.checks
        theory = [row for row in record.rows if row.get("kind") == "theory"]
        assert len(theory) == 14

    def test_scaling_checks_pass(self):
        record = run_scaling(sizes=(60, 120, 240), sample_pairs=50)
        assert record.all_checks_passed, record.checks
        assert record.parameters["rounds-exponent"] < 1.0


class TestFigureExperiments:
    @pytest.mark.parametrize("name", sorted(ALL_FIGURES.keys()))
    def test_every_figure_check_passes(self, name, figure_result):
        record = ALL_FIGURES[name](figure_result)
        assert record.all_checks_passed, (name, record.checks)

    def test_run_all_figures_returns_all(self):
        graph = planted_partition_graph(4, 8, 0.6, 0.05, seed=8)
        records = run_all_figures(graph)
        assert set(records.keys()) == set(ALL_FIGURES.keys())
        assert all(record.all_checks_passed for record in records.values())

    def test_figure1_reports_popular_clusters(self, figure_result):
        record = ALL_FIGURES["figure1"](figure_result)
        assert any(row["popular"] > 0 for row in record.rows)

    def test_figure7_reports_pairs(self, figure_result):
        record = ALL_FIGURES["figure7"](figure_result)
        assert record.parameters["pairs_checked"] > 0
        assert record.rows
