"""Tests for experiment records, workloads and the measurement runner."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentRecord,
    default_parameters,
    experiment_workloads,
    fit_power_law,
    measure_baseline,
    measure_deterministic,
    measurement_row,
    save_records,
    scaling_graphs,
    scaling_sizes,
)
from repro.baselines import build_greedy_spanner
from repro.graphs import gnp_random_graph


class TestExperimentRecord:
    def test_checks_aggregate(self):
        record = ExperimentRecord(name="x", description="d", checks={"a": True, "b": True})
        assert record.all_checks_passed
        record.checks["c"] = False
        assert not record.all_checks_passed

    def test_empty_checks_count_as_passed(self):
        assert ExperimentRecord(name="x", description="d").all_checks_passed

    def test_render_contains_rows_and_checks(self):
        record = ExperimentRecord(
            name="demo",
            description="a demo",
            rows=[{"a": 1}, {"a": 2}],
            series={"s": [1.0, 2.0]},
            checks={"ok": True},
        )
        record.add_note("hello")
        text = record.render()
        assert "== demo ==" in text
        assert "ok=PASS" in text
        assert "note: hello" in text

    def test_render_groups_heterogeneous_rows(self):
        record = ExperimentRecord(
            name="demo", description="", rows=[{"a": 1}, {"b": 2}],
        )
        text = record.render()
        assert "a" in text and "b" in text

    def test_save_and_load_round_trip(self, tmp_path):
        record = ExperimentRecord(
            name="demo", description="d", rows=[{"a": 1}], series={"s": [1.0]}, checks={"ok": True}
        )
        path = tmp_path / "demo.json"
        record.save(path)
        loaded = ExperimentRecord.load(path)
        assert loaded.name == "demo"
        assert loaded.rows == [{"a": 1}]
        assert loaded.checks == {"ok": True}

    def test_save_records_directory(self, tmp_path):
        records = [ExperimentRecord(name=f"r{i}", description="") for i in range(3)]
        paths = save_records(records, tmp_path / "out")
        assert len(paths) == 3
        assert all(path.exists() for path in paths)

    def test_canonical_json_is_stable_and_sorted(self):
        record = ExperimentRecord(
            name="c", description="d", parameters={"b": 1, "a": 2}, checks={"ok": True}
        )
        text = record.to_canonical_json()
        assert text == record.to_canonical_json()
        assert text.index('"a"') < text.index('"b"')
        assert record.digest() == ExperimentRecord.from_dict(record.to_dict()).digest()

    def test_from_dict_round_trip(self):
        record = ExperimentRecord(
            name="r", description="d", rows=[{"a": 1}], series={"s": [1.0]},
            checks={"ok": False}, notes=["n"],
        )
        rebuilt = ExperimentRecord.from_dict(record.to_dict())
        assert rebuilt == record


class TestWorkloads:
    def test_default_parameters(self):
        params = default_parameters()
        assert params.kappa == 3
        assert params.num_phases >= 2

    def test_experiment_workloads_cover_families(self):
        workloads = experiment_workloads(scale=64)
        assert len(workloads) >= 8
        for name, graph in workloads.items():
            assert graph.num_vertices > 0, name

    def test_scaling_sizes_geometric(self):
        assert scaling_sizes(base=50, steps=3, factor=2) == [50, 100, 200]

    def test_scaling_graphs(self):
        graphs = scaling_graphs([20, 40], family="gnp")
        assert [size for size, _ in graphs] == [20, 40]
        assert graphs[1][1].num_vertices == 40


class TestRunner:
    def test_measure_deterministic(self):
        graph = gnp_random_graph(40, 0.1, seed=1)
        measurement, result = measure_deterministic(graph, default_parameters(), graph_name="g")
        assert measurement.guarantee_satisfied
        assert measurement.num_spanner_edges == result.num_edges
        row = measurement.to_row()
        assert row["graph"] == "g"
        assert row["n"] == 40

    def test_measure_baseline(self):
        graph = gnp_random_graph(40, 0.1, seed=2)
        measurement, baseline = measure_baseline(graph, lambda: build_greedy_spanner(graph, 5))
        assert measurement.algorithm == "greedy"
        assert measurement.guarantee_satisfied
        assert measurement.num_spanner_edges == baseline.num_edges

    def test_fit_power_law_exact(self):
        sizes = [10, 100, 1000]
        values = [5 * s ** 2 for s in sizes]
        assert fit_power_law(sizes, values) == pytest.approx(2.0)

    def test_fit_power_law_degenerate(self):
        assert fit_power_law([10], [100]) == 0.0
        assert fit_power_law([], []) == 0.0

    def test_measurement_row_strips_timing(self):
        graph = gnp_random_graph(30, 0.15, seed=3)
        measurement, _ = measure_deterministic(graph, default_parameters(), graph_name="g")
        row = measurement_row(measurement)
        assert "seconds" not in row
        assert "wall_seconds" not in row
        full = measurement.to_row()
        assert {k: v for k, v in full.items() if k != "seconds"} == row
