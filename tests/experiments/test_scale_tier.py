"""Tests for the scale-tier scenarios (PR 5): large-n families and growth checks."""

from __future__ import annotations

import pytest

from repro.experiments import get_spec, run_scenario
from repro.experiments.scaling import growth_merge


class TestScalingGrowthScenario:
    @pytest.fixture(scope="class")
    def record(self):
        spec = get_spec("scaling-growth").with_defaults(
            families=["sparse_gnp", "powerlaw"], sizes=[48, 96]
        )
        return run_scenario(spec)

    def test_all_growth_checks_pass(self, record):
        assert record.all_checks_passed, record.checks
        assert set(record.checks) == {
            "rounds-within-declared-bound",
            "rounds-growth-within-phase-bound",
            "messages-within-bandwidth-bound",
            "messages-grow-subquadratically",
        }

    def test_per_family_series_and_exponents(self, record):
        for family in ("sparse_gnp", "powerlaw"):
            assert record.series[f"n[{family}]"] == [48.0, 96.0]
            assert len(record.series[f"rounds[{family}]"]) == 2
            assert len(record.series[f"messages[{family}]"]) == 2
            assert family in record.parameters["rounds-exponent-by-family"]

    def test_rows_carry_the_raw_congest_counters(self, record):
        assert len(record.rows) == 4
        for row in record.rows:
            assert row["rounds"] <= row["round_bound"]
            assert row["messages"] > 0
            assert row["simulated_rounds"] > 0


class TestGrowthMergeChecks:
    """The declared-bound checks on synthetic payloads (no builds)."""

    @staticmethod
    def _payload(family, size, rounds, round_bound, messages, simulated, edges):
        return {
            "family": family,
            "size": size,
            "rounds": float(rounds),
            "simulated_rounds": float(simulated),
            "messages": float(messages),
            "graph_edges": float(edges),
            "spanner_edges": float(edges),
            "round_bound": float(round_bound),
            "beta": 8.0,
        }

    _DEFAULTS = {
        "epsilon": 0.25,
        "kappa": 3,
        "rho": 1.0 / 3.0,
        "algorithm": "new-distributed",
    }

    def test_bound_violation_fails_the_check(self):
        payloads = [
            self._payload("f", 100, rounds=5000, round_bound=1000, messages=10,
                          simulated=10, edges=200),
        ]
        record = growth_merge(dict(self._DEFAULTS), payloads)
        assert record.checks["rounds-within-declared-bound"] is False

    def test_superlinear_round_growth_fails_the_phase_bound(self):
        # rounds ~ n^1.5 >> rho + slack.
        payloads = [
            self._payload("f", n, rounds=n ** 1.5, round_bound=10 ** 9,
                          messages=n, simulated=n, edges=2 * n)
            for n in (64, 128, 256, 512)
        ]
        record = growth_merge(dict(self._DEFAULTS), payloads)
        assert record.checks["rounds-within-declared-bound"] is True
        assert record.checks["rounds-growth-within-phase-bound"] is False

    def test_bandwidth_violation_fails_the_check(self):
        # More messages than 2 * m * simulated_rounds is physically impossible
        # in CONGEST; the check must catch an accounting regression.
        payloads = [
            self._payload("f", 100, rounds=10, round_bound=10 ** 6,
                          messages=10 ** 9, simulated=5, edges=100),
        ]
        record = growth_merge(dict(self._DEFAULTS), payloads)
        assert record.checks["messages-within-bandwidth-bound"] is False

    def test_well_behaved_payloads_pass_everything(self):
        payloads = [
            self._payload(family, n, rounds=40 * n ** (1 / 3), round_bound=10 ** 6,
                          messages=6 * n, simulated=n ** 0.5 + 20, edges=3 * n)
            for family in ("a", "b")
            for n in (64, 128, 256)
        ]
        record = growth_merge(dict(self._DEFAULTS), payloads)
        assert record.all_checks_passed, record.checks


class TestScaleTierFamilyScenarios:
    @pytest.mark.parametrize(
        "name", ["family-powerlaw", "family-hyperbolic", "family-torus"]
    )
    def test_family_scenario_checks_pass_at_reduced_scale(self, name):
        spec = get_spec(name).with_defaults(sizes=[48, 80], sample_pairs=40)
        record = run_scenario(spec)
        assert record.all_checks_passed, (name, record.checks)
        assert len(record.series["n"]) == len(record.rows)

    def test_scaling_large_spec_registered_with_scale_tier_tag(self):
        spec = get_spec("scaling-large")
        assert "scale-tier" in spec.tags
        assert spec.defaults["family"] == "sparse_gnp"
        assert max(spec.defaults["sizes"]) >= 4096

    def test_scaling_large_checks_pass_at_reduced_scale(self):
        spec = get_spec("scaling-large").with_defaults(
            sizes=[96, 192, 384], sample_pairs=40
        )
        record = run_scenario(spec)
        assert record.all_checks_passed, record.checks
