"""Tests for the experiment pipeline: determinism, parallelism, manifests.

The central contract: ``--jobs 1`` and ``--jobs N`` produce byte-identical
serialized :class:`ExperimentRecord`s, and timing never leaks into a record.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_spec, run_scenario, run_suite
from repro.experiments.ablation import epsilon_ablation_spec
from repro.experiments.pipeline import canonicalize_payload, expand_tasks
from repro.experiments.registry import ScenarioSpec
from repro.experiments.results import ExperimentRecord
from repro.experiments.table1 import table1_spec


def _suite_specs():
    """A cheap but representative suite: sweep, ablation, figure, family."""
    return [
        table1_spec(sizes=(40, 80), sample_pairs=40),
        epsilon_ablation_spec(epsilons=(0.1, 0.3), sample_pairs=40),
        get_spec("figure1"),
        get_spec("family-multi-component"),
    ]


def _canonical_records(result):
    return {name: record.to_canonical_json() for name, record in result.records.items()}


class TestDeterminism:
    def test_jobs1_and_jobs4_byte_identical(self):
        specs = _suite_specs()
        serial = run_suite(specs, jobs=1)
        parallel = run_suite(specs, jobs=4)
        assert serial.ok and parallel.ok
        assert _canonical_records(serial) == _canonical_records(parallel)

    def test_repeated_serial_runs_identical(self):
        specs = [table1_spec(sizes=(40, 80), sample_pairs=40)]
        assert _canonical_records(run_suite(specs)) == _canonical_records(run_suite(specs))

    def test_no_timing_fields_in_records(self):
        record = run_scenario(epsilon_ablation_spec(epsilons=(0.1, 0.3), sample_pairs=40))
        for row in record.rows:
            assert "seconds" not in row
            assert "wall_seconds" not in row

    def test_canonicalize_payload_strips_timing_recursively(self):
        payload = {
            "rows": [{"a": 1, "seconds": 0.5}],
            "nested": {"wall_seconds": 1.0, "keep": 2},
            "seconds": 3.0,
        }
        assert canonicalize_payload(payload) == {
            "rows": [{"a": 1}],
            "nested": {"keep": 2},
        }

    def test_canonicalize_payload_json_round_trips(self):
        assert canonicalize_payload({"t": (1, 2)}) == {"t": [1, 2]}


class TestManifest:
    def test_manifest_reports_tasks_and_wallclock(self):
        result = run_suite([epsilon_ablation_spec(epsilons=(0.1, 0.3), sample_pairs=40)])
        manifest = result.manifest()
        assert manifest["total_tasks"] == 2
        assert manifest["total_computed"] == 2
        assert manifest["total_cache_hits"] == 0
        assert manifest["all_ok"] is True
        (entry,) = manifest["scenarios"]
        assert entry["name"] == "ablation-epsilon"
        assert entry["status"] == "ok"
        assert entry["wall_seconds"] >= 0
        assert entry["record_digest"]

    def test_task_failure_reported_not_raised(self):
        def exploding_task(params, seed):
            raise RuntimeError("boom")

        spec = ScenarioSpec(
            name="exploding",
            description="",
            task=exploding_task,
            merge=lambda defaults, payloads: ExperimentRecord(name="x", description=""),
            defaults={"a": 1},
        )
        result = run_suite([spec])
        assert not result.ok
        (outcome,) = result.outcomes
        assert "boom" in outcome.error
        assert result.manifest()["scenarios"][0]["status"] == "error"

    def test_run_scenario_raises_on_failure(self):
        def exploding_task(params, seed):
            raise RuntimeError("boom")

        spec = ScenarioSpec(
            name="exploding2",
            description="",
            task=exploding_task,
            merge=lambda defaults, payloads: ExperimentRecord(name="x", description=""),
        )
        with pytest.raises(RuntimeError, match="boom"):
            run_scenario(spec)

    def test_failed_record_checks_flagged(self):
        def fine_task(params, seed):
            return {"v": 1}

        def failing_merge(defaults, payloads):
            record = ExperimentRecord(name="x", description="")
            record.checks["always-fails"] = False
            return record

        spec = ScenarioSpec(
            name="check-failer",
            description="",
            task=fine_task,
            merge=failing_merge,
        )
        result = run_suite([spec])
        assert not result.ok
        entry = result.manifest()["scenarios"][0]
        assert entry["status"] == "check-failed"
        assert entry["checks_failed"] == ["always-fails"]

    def test_duplicate_scenario_names_rejected(self):
        spec = get_spec("figure1")
        with pytest.raises(ValueError):
            run_suite([spec, spec])

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_suite([], jobs=0)

    def test_resume_without_store_rejected(self):
        with pytest.raises(ValueError, match="requires a store"):
            run_suite([], resume=True)

    def test_manifest_reports_elapsed_wallclock(self):
        result = run_suite([epsilon_ablation_spec(epsilons=(0.1,), sample_pairs=40)])
        manifest = result.manifest()
        assert manifest["elapsed_seconds"] > 0

    def test_graph_bearing_spec_refused_parallel_and_stored(self, tmp_path):
        from repro.graphs import gnp_random_graph

        spec = epsilon_ablation_spec(
            epsilons=(0.1, 0.3), graph=gnp_random_graph(30, 0.2, seed=1), sample_pairs=20
        )
        with pytest.raises(ValueError, match="non-serializable"):
            run_suite([spec], jobs=2)
        with pytest.raises(ValueError, match="non-serializable"):
            run_suite([spec], store=tmp_path)
        # the in-process serial path still works
        assert run_suite([spec]).ok

    def test_nested_graph_params_also_refused(self, tmp_path):
        # _json_safe must be deep: a graph hidden in a list would otherwise be
        # content-addressed by its repr (same key for different graphs).
        from repro.graphs import gnp_random_graph

        spec = ScenarioSpec(
            name="nested-graph-spec",
            description="",
            task=lambda p, s: {"v": 1},
            merge=lambda d, p: ExperimentRecord(name="x", description=""),
            defaults={"graphs": [gnp_random_graph(10, 0.3, seed=1)]},
        )
        with pytest.raises(ValueError, match="non-serializable"):
            run_suite([spec], store=tmp_path)


class TestExpansion:
    def test_tasks_are_indexed_in_expansion_order(self):
        spec = table1_spec(sizes=(40, 60, 80), sample_pairs=10)
        tasks = expand_tasks(spec, store=None)
        assert [task.index for task in tasks] == [0, 1, 2]
        assert [task.params["size"] for task in tasks] == [40, 60, 80]
        # per-task seeds are deterministic and distinct per grid point
        assert len({task.seed for task in tasks}) == 3
        again = expand_tasks(spec, store=None)
        assert [t.seed for t in again] == [t.seed for t in tasks]

    def test_spec_checks_applied_to_merged_record(self):
        def task(params, seed):
            return {"v": int(params["v"])}

        def merge(defaults, payloads):
            record = ExperimentRecord(name="checked", description="")
            record.series["v"] = [float(p["v"]) for p in payloads]
            return record

        spec = ScenarioSpec(
            name="checked-spec",
            description="",
            task=task,
            merge=merge,
            grid={"v": [1, 2, 3]},
            checks={"values-positive": lambda r: all(v > 0 for v in r.series["v"])},
        )
        record = run_scenario(spec)
        assert record.checks == {"values-positive": True}
