"""Tests for the content-addressed result store and suite resumability."""

from __future__ import annotations

import json

from repro.experiments import run_suite
from repro.experiments.ablation import epsilon_ablation_spec
from repro.experiments.store import STORE_SCHEMA, ResultStore, payload_checksum
from repro.experiments.table1 import table1_spec


def _specs():
    return [
        table1_spec(sizes=(40, 80), sample_pairs=40),
        epsilon_ablation_spec(epsilons=(0.1, 0.3), sample_pairs=40),
    ]


class TestResultStore:
    def test_put_then_get(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"rows": [{"a": 1}]}
        store.put("scenario", "k" * 32, payload, params={"x": 1}, seed=7,
                  workload_fingerprint="fp", version="1")
        assert store.get("scenario", "k" * 32) == payload

    def test_miss_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).get("scenario", "missing") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("s", "a" * 32, {"v": 1}, params={}, seed=0,
                         workload_fingerprint="", version="1")
        path.write_text("{not json", encoding="utf-8")
        assert store.get("s", "a" * 32) is None

    def test_key_changes_with_every_component(self):
        base = ResultStore.task_key("s", {"x": 1}, "fp", "1")
        assert base == ResultStore.task_key("s", {"x": 1}, "fp", "1")
        assert base != ResultStore.task_key("s", {"x": 2}, "fp", "1")
        assert base != ResultStore.task_key("t", {"x": 1}, "fp", "1")
        assert base != ResultStore.task_key("s", {"x": 1}, "fp2", "1")
        assert base != ResultStore.task_key("s", {"x": 1}, "fp", "2")

    def test_put_records_payload_checksum(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"rows": [{"a": 1}]}
        path = store.put("s", "c" * 32, payload, params={}, seed=0,
                         workload_fingerprint="", version="1")
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry["schema"] == STORE_SCHEMA
        assert entry["payload_sha256"] == payload_checksum(payload)

    def test_bit_flip_in_payload_is_a_miss_and_auto_invalidates(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("s", "b" * 32, {"v": 1}, params={}, seed=0,
                         workload_fingerprint="", version="1")
        # Valid JSON, but the payload no longer matches its checksum.
        path.write_text(path.read_text(encoding="utf-8").replace('"v": 1', '"v": 2'),
                        encoding="utf-8")
        assert store.get("s", "b" * 32) is None
        assert not path.exists()

    def test_unparseable_entry_auto_invalidates(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("s", "d" * 32, {"v": 1}, params={}, seed=0,
                         workload_fingerprint="", version="1")
        path.write_text("{not json", encoding="utf-8")
        assert store.get("s", "d" * 32) is None
        assert not path.exists()

    def test_stale_schema_auto_invalidates(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put("s", "e" * 32, {"v": 1}, params={}, seed=0,
                         workload_fingerprint="", version="1")
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["schema"] = "repro-result-store/v1"
        del entry["payload_sha256"]
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.get("s", "e" * 32) is None
        assert not path.exists()

    def test_audit_reports_and_removes_only_corrupt_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("s", "1" * 32, {"v": 1}, params={}, seed=0,
                  workload_fingerprint="", version="1")
        bad = store.put("s", "2" * 32, {"v": 2}, params={}, seed=0,
                        workload_fingerprint="", version="1")
        bad.write_text("garbage", encoding="utf-8")
        assert store.audit() == [("s", "2" * 32)]
        assert store.get("s", "1" * 32) == {"v": 1}
        assert store.size() == 1
        assert store.audit() == []

    def test_entries_and_prune(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a", "1" * 32, {}, params={}, seed=0, workload_fingerprint="", version="1")
        store.put("b", "2" * 32, {}, params={}, seed=0, workload_fingerprint="", version="1")
        assert store.size() == 2
        assert store.size("a") == 1
        assert store.prune("a") == 1
        assert store.size() == 1


class TestHotLayer:
    """The in-memory verified-entry cache (PR 9's serving-tier hit path)."""

    def _put(self, store, key, payload):
        return store.put("s", key, payload, params={}, seed=0,
                         workload_fingerprint="", version="1")

    def test_repeated_get_skips_the_reread(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        self._put(store, "a" * 32, {"v": 1})
        assert store.get("s", "a" * 32) == {"v": 1}
        # Any further disk read would crash: the hot layer must answer.
        monkeypatch.setattr(
            type(tmp_path), "read_text",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("hot miss")),
        )
        assert store.get("s", "a" * 32) == {"v": 1}

    def test_put_warms_the_hot_layer(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        self._put(store, "b" * 32, {"v": 2})
        monkeypatch.setattr(
            type(tmp_path), "read_text",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("hot miss")),
        )
        assert store.get("s", "b" * 32) == {"v": 2}

    def test_hot_hits_return_fresh_objects(self, tmp_path):
        store = ResultStore(tmp_path)
        self._put(store, "c" * 32, {"rows": [1, 2]})
        first = store.get("s", "c" * 32)
        first["rows"].append(99)  # a caller mutating its copy...
        second = store.get("s", "c" * 32)
        assert second == {"rows": [1, 2]}  # ...cannot corrupt later reads

    def test_file_rewrite_invalidates_the_hot_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._put(store, "d" * 32, {"v": 1})
        assert store.get("s", "d" * 32) == {"v": 1}
        # Another writer replaces the entry (new mtime/size): the hot layer
        # must notice and re-verify from disk.
        self._put(store, "d" * 32, {"v": 2})
        assert store.get("s", "d" * 32) == {"v": 2}
        # Corruption after a hot hit is also caught via the signature.
        path.write_text("garbage!!", encoding="utf-8")
        assert store.get("s", "d" * 32) is None

    def test_file_deletion_drops_the_hot_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._put(store, "e" * 32, {"v": 1})
        assert store.get("s", "e" * 32) == {"v": 1}
        path.unlink()
        assert store.get("s", "e" * 32) is None

    def test_audit_bypasses_the_hot_layer(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._put(store, "f" * 32, {"v": 1})
        assert store.get("s", "f" * 32) == {"v": 1}  # hot now
        # Corrupt the file while keeping its stat signature plausible is
        # fiddly; what matters is that audit re-reads regardless of warmth.
        text = path.read_text(encoding="utf-8").replace('"v": 1', '"v": 9')
        path.write_text(text, encoding="utf-8")
        assert store.audit() == [("s", "f" * 32)]
        assert store.get("s", "f" * 32) is None

    def test_prune_drops_hot_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        self._put(store, "1" * 32, {"v": 1})
        store.get("s", "1" * 32)
        assert store.prune() == 1
        assert store.get("s", "1" * 32) is None


class TestSuiteResume:
    def test_second_resume_run_recomputes_zero_tasks(self, tmp_path):
        first = run_suite(_specs(), store=tmp_path, resume=True)
        second = run_suite(_specs(), store=tmp_path, resume=True)
        m1, m2 = first.manifest(), second.manifest()
        assert m1["total_computed"] == m1["total_tasks"]
        assert m2["total_computed"] == 0
        assert m2["total_cache_hits"] == m2["total_tasks"]
        # cache hits are byte-for-byte indistinguishable from fresh results
        for name in first.records:
            assert (
                first.records[name].to_canonical_json()
                == second.records[name].to_canonical_json()
            )

    def test_without_resume_store_is_write_only(self, tmp_path):
        run_suite(_specs(), store=tmp_path)
        rerun = run_suite(_specs(), store=tmp_path)
        assert rerun.manifest()["total_cache_hits"] == 0
        assert rerun.manifest()["total_computed"] == rerun.manifest()["total_tasks"]

    def test_parameter_change_invalidates_only_affected_tasks(self, tmp_path):
        spec = epsilon_ablation_spec(epsilons=(0.1, 0.3), sample_pairs=40)
        run_suite([spec], store=tmp_path, resume=True)
        grown = epsilon_ablation_spec(epsilons=(0.1, 0.3, 0.5), sample_pairs=40)
        result = run_suite([grown], store=tmp_path, resume=True)
        manifest = result.manifest()["scenarios"][0]
        assert manifest["cache_hits"] == 2  # the two unchanged grid points
        assert manifest["computed"] == 1  # only the new epsilon

    def test_sample_pairs_change_invalidates_everything(self, tmp_path):
        spec = epsilon_ablation_spec(epsilons=(0.1, 0.3), sample_pairs=40)
        run_suite([spec], store=tmp_path, resume=True)
        changed = epsilon_ablation_spec(epsilons=(0.1, 0.3), sample_pairs=60)
        result = run_suite([changed], store=tmp_path, resume=True)
        manifest = result.manifest()["scenarios"][0]
        assert manifest["cache_hits"] == 0
        assert manifest["computed"] == 2

    def test_version_bump_invalidates(self, tmp_path):
        import dataclasses

        spec = epsilon_ablation_spec(epsilons=(0.1, 0.3), sample_pairs=40)
        run_suite([spec], store=tmp_path, resume=True)
        bumped = dataclasses.replace(spec, version=spec.version + "-bumped")
        result = run_suite([bumped], store=tmp_path, resume=True)
        assert result.manifest()["scenarios"][0]["cache_hits"] == 0

    def test_corrupted_entry_recomputed_on_resume(self, tmp_path):
        spec = epsilon_ablation_spec(epsilons=(0.1, 0.3), sample_pairs=40)
        first = run_suite([spec], store=tmp_path, resume=True)
        store = ResultStore(tmp_path)
        scenario, key = next(iter(store.entries()))
        path = store._path(scenario, key)
        path.write_text(path.read_text(encoding="utf-8")[:-40], encoding="utf-8")
        second = run_suite([spec], store=tmp_path, resume=True)
        manifest = second.manifest()["scenarios"][0]
        assert manifest["cache_hits"] == 1
        assert manifest["computed"] == 1
        # The recomputed payload is stored again, and records stay identical.
        assert store.get(scenario, key) is not None
        assert (
            first.records[spec.name].to_canonical_json()
            == second.records[spec.name].to_canonical_json()
        )

    def test_resume_with_parallel_jobs_identical_to_fresh_serial(self, tmp_path):
        specs = _specs()
        fresh = run_suite(specs, jobs=1)
        run_suite(specs, jobs=2, store=tmp_path, resume=True)
        resumed = run_suite(specs, jobs=2, store=tmp_path, resume=True)
        assert resumed.manifest()["total_computed"] == 0
        for name in fresh.records:
            assert (
                fresh.records[name].to_canonical_json()
                == resumed.records[name].to_canonical_json()
            )
