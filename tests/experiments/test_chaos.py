"""Tests for the chaos scenarios: fault injection vs. guarantee preservation."""

from __future__ import annotations

import json

import pytest

from repro.analysis import render_fault_summary
from repro.cli import main
from repro.congest import ProtocolFault
from repro.experiments import all_specs, get_spec, run_scenario
from repro.experiments import chaos as chaos_module
from repro.experiments.chaos import (
    CHAOS_PRIMITIVES,
    FAULT_PROFILES,
    OUTCOMES,
    chaos_primitives_spec,
    chaos_primitives_task,
    chaos_sweep_spec,
    chaos_sweep_task,
)


class TestRegistration:
    def test_both_scenarios_are_registered_under_the_chaos_tag(self):
        names = [spec.name for spec in all_specs("chaos")]
        assert names == ["chaos-primitives", "chaos-sweep"]

    def test_specs_carry_the_fault_tier_contract_checks(self):
        for name in ("chaos-primitives", "chaos-sweep"):
            spec = get_spec(name)
            assert set(spec.checks) == {
                "all-tasks-terminated",
                "safety-guarantees-survive",
                "zero-fault-exact",
                "faults-counted",
            }

    def test_primitives_grid_covers_every_primitive_and_profile(self):
        points = get_spec("chaos-primitives").task_params()
        assert len(points) == len(CHAOS_PRIMITIVES) * len(FAULT_PROFILES)
        assert {p["primitive"] for p in points} == set(CHAOS_PRIMITIVES)
        assert {p["profile"] for p in points} == set(FAULT_PROFILES)


class TestChaosPrimitives:
    @pytest.fixture(scope="class")
    def record(self):
        return run_scenario(chaos_primitives_spec(size=40))

    def test_every_check_passes(self, record):
        assert record.all_checks_passed, record.checks

    def test_every_row_reaches_a_typed_outcome(self, record):
        assert all(row["outcome"] in OUTCOMES for row in record.rows)

    def test_zero_fault_rows_are_exact_with_zero_counters(self, record):
        quiet = [row for row in record.rows if not row["injected"]]
        assert len(quiet) == len(CHAOS_PRIMITIVES)
        for row in quiet:
            assert row["outcome"] == "exact"
            assert row["attempts"] == 1
            assert all(count == 0 for count in row["fault_counters"].values())

    def test_active_plans_inject_counted_faults(self, record):
        for row in record.rows:
            if row["injected"] and row["outcome"] != "protocol-fault":
                assert sum(
                    v for k, v in row["fault_counters"].items() if k != "delay_rounds"
                ) > 0

    def test_safety_survives_every_terminating_run(self, record):
        for row in record.rows:
            if row["outcome"] != "protocol-fault":
                assert row["safety_intact"] is True

    def test_render_fault_summary_tabulates_every_row(self, record):
        text = render_fault_summary(record)
        assert "fault summary: chaos-primitives" in text
        for primitive in CHAOS_PRIMITIVES:
            assert primitive in text
        assert "dropped" in text and "crashed_nodes" in text


class TestChaosSweep:
    @pytest.fixture(scope="class")
    def record(self):
        return run_scenario(chaos_sweep_spec(size=48))

    def test_every_check_passes(self, record):
        assert record.all_checks_passed, record.checks

    def test_series_track_the_grid(self, record):
        rows = len(record.rows)
        for name in ("drop-rate", "crash-fraction", "exactness-held", "faults-injected"):
            assert len(record.series[name]) == rows

    def test_fault_free_corner_is_exact(self, record):
        corner = [
            row
            for row in record.rows
            if row["drop_rate"] == 0.0 and row["crash_fraction"] == 0.0
        ]
        assert len(corner) == 1
        assert corner[0]["outcome"] == "exact"

    def test_fault_pressure_erodes_exactness_but_not_safety(self, record):
        stressed = [row for row in record.rows if row["injected"]]
        assert any(row["outcome"] == "verified-degraded" for row in stressed)
        assert all(row["safety_intact"] for row in stressed)


class TestDeterminism:
    """Acceptance criterion: a fixed fault seed gives byte-identical records."""

    def test_same_fault_seed_is_byte_identical_across_runs_and_jobs(self):
        spec = chaos_sweep_spec(size=40, fault_seed=55)
        serial_one = run_scenario(spec, jobs=1).to_canonical_json()
        serial_two = run_scenario(spec, jobs=1).to_canonical_json()
        parallel = run_scenario(spec, jobs=4).to_canonical_json()
        assert serial_one == serial_two
        assert serial_one == parallel

    def test_primitive_matrix_is_byte_identical_under_parallel_execution(self):
        spec = chaos_primitives_spec(size=32, profiles=["none", "drops", "crashes"])
        serial = run_scenario(spec, jobs=1).to_canonical_json()
        parallel = run_scenario(spec, jobs=3).to_canonical_json()
        assert serial == parallel

    def test_different_fault_seeds_change_the_injected_schedule(self):
        one = run_scenario(chaos_sweep_spec(size=40, fault_seed=55))
        two = run_scenario(chaos_sweep_spec(size=40, fault_seed=56))
        assert one.series["faults-injected"] != two.series["faults-injected"]


class TestProtocolFaultRows:
    def test_task_converts_protocol_fault_into_a_typed_row(self, monkeypatch):
        def explode(primitive, graph, plan, max_attempts):
            raise ProtocolFault(
                primitive, "round-timeout", attempts=max_attempts,
                fault_counters={"dropped": 7},
            )

        monkeypatch.setattr(chaos_module, "_run_primitive", explode)
        params = {
            "size": 32, "workload_seed": 11, "fault_seed": 93,
            "max_attempts": 2, "primitive": "bfs-forest", "profile": "drops",
        }
        row = chaos_primitives_task(params, 0)["row"]
        assert row["outcome"] == "protocol-fault"
        assert row["fault_reason"] == "round-timeout"
        assert row["attempts"] == 2
        assert row["safety_intact"] is None
        assert row["all_passed"] is False
        assert row["fault_counters"] == {"dropped": 7}

    def test_real_round_timeout_surfaces_as_protocol_fault(self, monkeypatch):
        # Starve the faulted BFS forest of rounds so every bounded retry
        # times out and the task must fall back to the typed outcome.
        monkeypatch.setattr(
            "repro.primitives.bfs_forest.fault_round_limit", lambda nominal, plan: 1
        )
        params = {
            "size": 48, "workload_seed": 29, "fault_seed": 187,
            "max_attempts": 2, "drop_rate": 0.2, "crash_fraction": 0.0,
        }
        row = chaos_sweep_task(params, 0)["row"]
        assert row["outcome"] == "protocol-fault"
        assert row["attempts"] == 2

    def test_contract_checks_tolerate_protocol_fault_rows(self, monkeypatch):
        def explode(primitive, graph, plan, max_attempts):
            raise ProtocolFault(primitive, "round-timeout", attempts=max_attempts)

        monkeypatch.setattr(chaos_module, "_run_primitive", explode)
        spec = chaos_primitives_spec(size=32, profiles=["drops"])
        record = run_scenario(spec)
        assert all(row["outcome"] == "protocol-fault" for row in record.rows)
        # A fault-stopped run never reports counters or survives verification,
        # so the terminate/safety/counted checks must not misfire on it.
        assert record.all_checks_passed, record.checks


class TestChaosCli:
    def test_chaos_command_prints_fault_summaries_and_manifest(self, capsys):
        exit_code = main(["chaos", "--scenario", "chaos-primitives", "--jobs", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "fault summary: chaos-primitives" in output
        assert "verified-degraded" in output
        assert "all ok" in output

    def test_chaos_command_saves_an_empty_failure_manifest(self, tmp_path, capsys):
        failures_path = tmp_path / "failures.json"
        exit_code = main([
            "chaos", "--scenario", "chaos-sweep",
            "--task-timeout", "120", "--task-retries", "1",
            "--failures", str(failures_path),
        ])
        assert exit_code == 0
        manifest = json.loads(failures_path.read_text())
        assert manifest["schema"] == "repro-failure-manifest/v1"
        assert manifest["count"] == 0
        assert manifest["failures"] == []

    def test_chaos_command_rejects_unknown_scenario(self, capsys):
        assert main(["chaos", "--scenario", "no-such-chaos"]) == 2
        assert "unknown chaos scenario" in capsys.readouterr().err

    def test_chaos_command_rejects_resume_without_store(self, capsys):
        assert main(["chaos", "--resume"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_store_smoke_invalidates_and_recomputes(self, capsys):
        exit_code = main(["chaos", "--store-smoke"])
        assert exit_code == 0
        assert "store smoke: OK" in capsys.readouterr().out
