"""Tests for the hardened pipeline: TaskError, timeouts, retries, quarantine.

Worker task functions live at module level so the process pool can pickle
them by reference.
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path

import pytest

from repro.experiments import (
    FAILURE_MANIFEST_SCHEMA,
    ExperimentRecord,
    TaskError,
    run_suite,
    validate_failure_manifest,
)
from repro.experiments.pipeline import execute_task_spec
from repro.experiments.registry import ScenarioSpec


# ----------------------------------------------------------------------
# Picklable worker tasks
# ----------------------------------------------------------------------
def _quick_task(params, seed):
    return {"rows": [{"x": params["x"], "seed": seed}]}


def _boom_task(params, seed):
    raise ValueError("boom")


def _sleepy_task(params, seed):
    time.sleep(params["sleep"])
    return {"rows": [{"slept": params["sleep"], "seed": seed}]}


def _flaky_task(params, seed):
    """Fails once per marker file, then succeeds (a transient failure)."""
    marker = Path(params["marker"]) / f"attempt-{params['x']}"
    attempts = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(attempts + 1), encoding="utf-8")
    if attempts < params["failures"]:
        raise RuntimeError(f"transient failure {attempts}")
    return {"rows": [{"x": params["x"], "seed": seed}]}


def _merge(defaults, payloads):
    rows = [row for payload in payloads for row in payload["rows"]]
    return ExperimentRecord(name="hardening", description="", rows=rows)


def _spec(name, task, **kwargs):
    return ScenarioSpec(name=name, description="", task=task, merge=_merge, **kwargs)


# ----------------------------------------------------------------------
# TaskError
# ----------------------------------------------------------------------
class TestTaskError:
    def test_message_carries_identity(self):
        err = TaskError("table1", 3, 1234, "ValueError: boom", params={"n": 40})
        assert "task 3" in str(err)
        assert "'table1'" in str(err)
        assert "seed=1234" in str(err)
        assert "ValueError: boom" in str(err)

    def test_pickle_round_trip(self):
        err = TaskError("table1", 3, 1234, "ValueError: boom", params={"n": 40})
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, TaskError)
        assert (clone.scenario, clone.index, clone.seed) == ("table1", 3, 1234)
        assert clone.cause == "ValueError: boom"
        assert clone.params == {"n": 40}
        assert str(clone) == str(err)

    def test_execute_task_spec_wraps_failures(self):
        with pytest.raises(TaskError) as info:
            execute_task_spec(_boom_task, "scn", 2, {"x": 1}, 99)
        assert info.value.scenario == "scn"
        assert info.value.index == 2
        assert info.value.seed == 99
        assert info.value.cause == "ValueError: boom"
        assert isinstance(info.value.__cause__, ValueError)

    def test_execute_task_spec_passes_results_through(self):
        payload, wall = execute_task_spec(_quick_task, "scn", 0, {"x": 7}, 5)
        assert payload == {"rows": [{"x": 7, "seed": 5}]}
        assert wall >= 0


# ----------------------------------------------------------------------
# Timeouts
# ----------------------------------------------------------------------
class TestTimeouts:
    def test_hung_task_quarantined_suite_completes(self):
        specs = [
            _spec("hang", _sleepy_task, grid={"sleep": [0.01, 60.0]}),
            _spec("fine", _quick_task, grid={"x": [1, 2]}),
        ]
        start = time.monotonic()
        result = run_suite(specs, jobs=2, task_timeout=2.0)
        assert time.monotonic() - start < 30
        assert not result.ok
        manifest = result.failure_manifest()
        validate_failure_manifest(manifest)
        assert manifest["count"] == 1
        (entry,) = manifest["failures"]
        assert entry["scenario"] == "hang"
        assert "TaskTimeout" in entry["error"]
        # The healthy scenario still merged normally.
        fine = next(o for o in result.outcomes if o.name == "fine")
        assert fine.ok and len(fine.record.rows) == 2

    def test_stranded_tasks_resubmitted_after_kill(self):
        # One worker: the hung first task forces a pool kill while the
        # remaining tasks are still queued; they must complete in a fresh
        # pool, not inherit the failure.
        spec = _spec("strand", _sleepy_task, expand=lambda d: [
            {"sleep": 60.0}, {"sleep": 0.01}, {"sleep": 0.02},
        ])
        result = run_suite([spec], jobs=1, task_timeout=2.0)
        manifest = result.failure_manifest()
        assert manifest["count"] == 1
        assert manifest["failures"][0]["task_index"] == 0
        outcome = result.outcomes[0]
        assert outcome.computed == 2

    def test_timeout_forces_json_safe_validation(self):
        from repro.graphs import path_graph

        spec = _spec("graphful", _quick_task, defaults={"x": 1, "graph": path_graph(4)})
        with pytest.raises(ValueError, match="non-serializable"):
            run_suite([spec], jobs=1, task_timeout=1.0)

    def test_bad_hardening_args_rejected(self):
        spec = _spec("ok", _quick_task, defaults={"x": 1})
        with pytest.raises(ValueError):
            run_suite([spec], task_timeout=0)
        with pytest.raises(ValueError):
            run_suite([spec], task_retries=-1)
        with pytest.raises(ValueError):
            run_suite([spec], retry_backoff=-0.1)


# ----------------------------------------------------------------------
# Retries
# ----------------------------------------------------------------------
class TestRetries:
    def test_serial_retry_recovers_transient_failure(self, tmp_path):
        spec = _spec(
            "flaky-serial",
            _flaky_task,
            defaults={"marker": str(tmp_path), "failures": 1},
            grid={"x": [1]},
        )
        result = run_suite([spec], jobs=1, task_retries=2, retry_backoff=0.0)
        assert result.ok
        assert (tmp_path / "attempt-1").read_text() == "2"
        assert result.failure_manifest()["count"] == 0

    def test_pool_retry_recovers_transient_failure(self, tmp_path):
        spec = _spec(
            "flaky-pool",
            _flaky_task,
            defaults={"marker": str(tmp_path), "failures": 1},
            grid={"x": [1, 2]},
        )
        result = run_suite([spec], jobs=2, task_retries=1, retry_backoff=0.0)
        assert result.ok
        assert result.outcomes[0].computed == 2

    def test_exhausted_retries_report_attempts(self):
        spec = _spec("exhausted", _boom_task, grid={"x": [1]})
        result = run_suite([spec], jobs=2, task_retries=2, retry_backoff=0.0)
        assert not result.ok
        (entry,) = result.failure_manifest()["failures"]
        assert entry["attempts"] == 3
        assert entry["error"] == "ValueError: boom"
        assert result.outcomes[0].error == "task 0 failed: ValueError: boom"

    def test_serial_exhausted_retries_report_attempts(self):
        spec = _spec("exhausted-serial", _boom_task, grid={"x": [1]})
        result = run_suite([spec], jobs=1, task_retries=1, retry_backoff=0.0)
        (entry,) = result.failure_manifest()["failures"]
        assert entry["attempts"] == 2


# ----------------------------------------------------------------------
# Determinism under hardening + manifest schema
# ----------------------------------------------------------------------
class TestHardenedDeterminism:
    def test_timeout_and_retries_keep_records_byte_identical(self):
        def specs():
            return [_spec("det", _quick_task, grid={"x": [1, 2, 3]})]

        plain = run_suite(specs(), jobs=1)
        hardened_serial = run_suite(specs(), jobs=1, task_timeout=30.0, task_retries=2)
        hardened_parallel = run_suite(specs(), jobs=4, task_timeout=30.0, task_retries=2)
        canonical = plain.records["det"].to_canonical_json()
        assert hardened_serial.records["det"].to_canonical_json() == canonical
        assert hardened_parallel.records["det"].to_canonical_json() == canonical

    def test_clean_suite_has_empty_failure_manifest(self):
        result = run_suite([_spec("clean", _quick_task, grid={"x": [1]})])
        manifest = result.failure_manifest()
        validate_failure_manifest(manifest)
        assert manifest == {
            "schema": FAILURE_MANIFEST_SCHEMA,
            "count": 0,
            "failures": [],
        }
        assert result.manifest()["failed_tasks"] == 0

    def test_validator_rejects_malformed_manifests(self):
        with pytest.raises(ValueError, match="schema"):
            validate_failure_manifest({"schema": "nope", "count": 0, "failures": []})
        with pytest.raises(ValueError, match="count"):
            validate_failure_manifest(
                {"schema": FAILURE_MANIFEST_SCHEMA, "count": 2, "failures": []}
            )
        with pytest.raises(ValueError, match="attempts"):
            validate_failure_manifest(
                {
                    "schema": FAILURE_MANIFEST_SCHEMA,
                    "count": 1,
                    "failures": [
                        {
                            "scenario": "s",
                            "task_index": 0,
                            "seed": 1,
                            "params": {},
                            "error": "x",
                            "attempts": "three",
                        }
                    ],
                }
            )
