"""Subprocess smoke tests for the examples/ scripts on tiny inputs.

Each example is a user-facing entry point with its own argv handling and
imports; these tests run them exactly as a user would (fresh interpreter,
``PYTHONPATH=src``) and assert they exit cleanly and print their headline
output.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES = REPO_ROOT / "examples"
SRC = REPO_ROOT / "src"

#: (script, tiny argv, a string its stdout must contain)
CASES = [
    ("quickstart.py", ["40", "0.1"], "input graph"),
    ("compare_baselines.py", ["40"], "new-centralized"),
    ("congestion_audit.py", ["40"], "congestion"),
    ("phase_dynamics.py", ["3", "8"], "phase"),
    ("approximate_shortest_paths.py", ["3", "6"], "spanner"),
]


def _run_example(script: str, argv) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(SRC) + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *argv],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.mark.parametrize("script,argv,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs_cleanly(script, argv, expected):
    proc = _run_example(script, argv)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expected.lower() in proc.stdout.lower(), proc.stdout[-2000:]


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    assert scripts == {case[0] for case in CASES}
