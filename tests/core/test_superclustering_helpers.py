"""Tests for the engine-agnostic superclustering / interconnection helpers."""

from __future__ import annotations

import pytest

from repro.congest import Simulator
from repro.core import (
    Cluster,
    ClusterCollection,
    build_superclusters,
    deterministic_forest,
    forest_path_edges,
    interconnection_requests,
    spanned_center_roots,
)
from repro.core.interconnection import count_interconnection_paths
from repro.graphs import grid_graph, path_graph
from repro.primitives import centralized_bounded_exploration, run_bfs_forest


class TestDeterministicForest:
    def test_matches_distributed_protocol(self, community_graph):
        sources = [0, 25, 40]
        depth = 5
        root_c, dist_c, parent_c = deterministic_forest(community_graph, sources, depth)
        sim = Simulator(community_graph)
        forest = run_bfs_forest(sim, sources, depth=depth)
        assert root_c == forest.root
        assert dist_c == forest.dist
        assert parent_c == forest.parent

    def test_depth_limits_reach(self, path_6):
        root, dist, parent = deterministic_forest(path_6, [0], 2)
        assert root[:3] == [0, 0, 0]
        assert root[3:] == [None, None, None]

    def test_tie_break_prefers_smaller_root(self):
        graph = path_graph(5)
        root, _dist, _parent = deterministic_forest(graph, [0, 4], 10)
        assert root[2] == 0


class TestForestPathEdges:
    def test_path_edges_to_root(self, grid_5x5):
        root, dist, parent = deterministic_forest(grid_5x5, [0], 20)
        edges = forest_path_edges(parent, [24])
        assert len(edges) == dist[24]
        assert all(grid_5x5.has_edge(u, v) for u, v in edges)

    def test_overlapping_paths_share_edges(self, path_6):
        _root, _dist, parent = deterministic_forest(path_6, [0], 10)
        edges = forest_path_edges(parent, [3, 5])
        assert edges == {(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)}


class TestBuildSuperclusters:
    def test_split_into_next_and_unclustered(self):
        collection = ClusterCollection.singletons(5)
        center_root = {0: 0, 1: 0, 3: 3}
        next_collection, unclustered = build_superclusters(collection, center_root)
        assert sorted(c.center for c in next_collection) == [0, 3]
        assert next_collection.by_center(0).vertices == frozenset({0, 1})
        assert sorted(c.center for c in unclustered) == [2, 4]

    def test_spanned_center_roots_filters_unspanned(self):
        roots = [0, 0, None, 3, None]
        assert spanned_center_roots([0, 1, 2, 3, 4], roots) == {0: 0, 1: 0, 3: 3}

    def test_merged_vertex_sets_are_unions(self):
        collection = ClusterCollection(
            [Cluster(0, frozenset({0, 1})), Cluster(2, frozenset({2, 3})), Cluster(4, frozenset({4}))]
        )
        next_collection, unclustered = build_superclusters(collection, {0: 0, 2: 0})
        assert next_collection.by_center(0).vertices == frozenset({0, 1, 2, 3})
        assert [c.center for c in unclustered] == [4]


class TestInterconnectionRequests:
    def test_requests_exclude_self_and_cover_known(self, grid_5x5):
        exploration = centralized_bounded_exploration(grid_5x5, [0, 2, 12], depth=4, cap=10)
        requests = interconnection_requests([0], exploration)
        assert 0 not in requests[0]
        assert set(requests[0]) == {2, 12}

    def test_path_count(self):
        assert count_interconnection_paths({0: [1, 2], 5: [6]}) == 3
