"""Tests for the flat-array clustering core (:mod:`repro.core.cluster_table`).

Three layers of coverage:

* unit tests of the :class:`ClusterTable` invariants (singleton construction,
  O(1) queries, batched merge/retire semantics, version bumps, snapshot
  freezing);
* :class:`FlatClusters` compatibility with the legacy
  :class:`~repro.core.clusters.ClusterCollection` accessors;
* a randomized cross-check: random merge/retire schedules are applied to
  both a :class:`ClusterTable` and the frozenset-based reference
  (:func:`~repro.core.superclustering.build_superclusters` over
  :class:`ClusterCollection`), and every observable must match exactly;
* the engine-level invariant: on real runs, the partition property holds on
  every phase boundary.
"""

from __future__ import annotations

import random

import pytest

from repro.core import build_spanner, make_parameters
from repro.core.cluster_table import (
    ClusterTable,
    FlatClusters,
    flat_collections_partition_vertices,
)
from repro.core.clusters import ClusterCollection
from repro.core.superclustering import build_superclusters
from repro.graphs import gnp_random_graph
from repro.graphs.graph import Graph


def path_graph(n: int) -> Graph:
    graph = Graph(n)
    for v in range(n - 1):
        graph.add_edge(v, v + 1)
    return graph


class TestClusterTableBasics:
    def test_singletons(self):
        table = ClusterTable.singletons(4)
        assert table.num_active == 4
        assert table.centers() == [0, 1, 2, 3]
        for v in range(4):
            assert table.center_of(v) == v
            assert table.is_center(v)
            assert table.members_of_center(v) == [v]

    def test_empty_table(self):
        table = ClusterTable(3)
        assert table.num_active == 0
        assert table.centers() == []
        assert table.center_of(1) == -1

    def test_supercluster_merges_and_retires(self):
        table = ClusterTable.singletons(6)
        # Merge clusters 0,1,2 under root 1 and 4,5 under root 4; retire 3.
        unclustered = table.supercluster({0: 1, 1: 1, 2: 1, 4: 4, 5: 4})
        assert table.num_active == 2
        assert table.centers() == [1, 4]
        assert table.members_of_center(1) == [0, 1, 2]
        assert table.members_of_center(4) == [4, 5]
        for v in (0, 1, 2):
            assert table.center_of(v) == 1
        assert table.center_of(3) == -1
        assert len(unclustered) == 1
        assert unclustered.centers() == [3]
        assert unclustered.vertex_to_center() == {3: 3}

    def test_supercluster_then_again(self):
        table = ClusterTable.singletons(6)
        table.supercluster({v: v // 2 * 2 for v in range(6)})
        assert table.centers() == [0, 2, 4]
        unclustered = table.supercluster({0: 0, 2: 0})
        assert table.centers() == [0]
        assert table.members_of_center(0) == [0, 1, 2, 3]
        assert unclustered.centers() == [4]
        assert sorted(unclustered.by_center(4).members) == [4, 5]

    def test_retire_all(self):
        table = ClusterTable.singletons(3)
        view = table.retire_all()
        assert table.num_active == 0
        assert table.centers() == []
        assert len(view) == 3
        assert view.total_vertices() == 3
        for v in range(3):
            assert table.center_of(v) == -1

    def test_version_bumps_on_mutation(self):
        table = ClusterTable.singletons(4)
        v0 = table.version
        table.supercluster({0: 0, 1: 0})
        assert table.version == v0 + 1
        table.retire_all()
        assert table.version == v0 + 2

    def test_snapshot_is_frozen(self):
        table = ClusterTable.singletons(4)
        snap = table.snapshot()
        table.supercluster({0: 0, 1: 0, 2: 0, 3: 0})
        # The snapshot still shows the singleton partition.
        assert len(snap) == 4
        assert snap.vertex_to_center() == {v: v for v in range(4)}


class TestFlatClustersCompat:
    """FlatClusters must quack like the legacy ClusterCollection."""

    def _view(self) -> FlatClusters:
        return FlatClusters.from_center_map(6, {0: 0, 1: 0, 3: 3, 4: 3, 5: 3})

    def test_len_iter_contains(self):
        view = self._view()
        assert len(view) == 2
        assert [c.center for c in view] == [0, 3]
        assert 0 in view and 3 in view
        assert 1 not in view and 2 not in view

    def test_centers_and_by_center(self):
        view = self._view()
        assert view.centers() == [0, 3]
        cluster = view.by_center(3)
        assert cluster.center == 3
        assert cluster.members == (3, 4, 5)
        assert cluster.vertices == frozenset({3, 4, 5})
        assert cluster.size == 3
        assert 4 in cluster and 1 not in cluster
        with pytest.raises(KeyError):
            view.by_center(1)

    def test_vertex_queries(self):
        view = self._view()
        assert view.vertex_to_center() == {0: 0, 1: 0, 3: 3, 4: 3, 5: 3}
        assert view.vertex_set() == {0, 1, 3, 4, 5}
        assert view.total_vertices() == 5
        assert view.is_vertex_disjoint()
        assert view.cluster_index_of(4) == 1
        assert view.center_of_vertex(4) == 3
        assert view.center_of_vertex(2) == -1

    def test_summary(self):
        assert self._view().summary() == {
            "num_clusters": 2,
            "num_vertices": 5,
            "max_cluster_size": 3,
        }

    def test_max_radius_in(self):
        graph = path_graph(6)
        view = FlatClusters.from_center_map(6, {0: 0, 1: 0, 3: 4, 4: 4, 5: 4})
        assert view.max_radius_in(graph) == 1
        assert FlatClusters.empty(6).max_radius_in(graph) == 0

    def test_max_radius_unreachable_raises(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        view = FlatClusters.from_center_map(4, {0: 0, 3: 0})
        with pytest.raises(ValueError, match="unreachable"):
            view.max_radius_in(graph)

    def test_partition_check(self):
        a = FlatClusters.from_center_map(4, {0: 0, 1: 0})
        b = FlatClusters.from_center_map(4, {2: 2, 3: 3})
        assert flat_collections_partition_vertices([a, b], 4)
        overlap = FlatClusters.from_center_map(4, {1: 1, 2: 1})
        assert not flat_collections_partition_vertices([a, overlap], 4)
        assert not flat_collections_partition_vertices([a], 4)


class TestRandomizedCrossCheck:
    """Random merge/retire schedules vs. the frozenset reference."""

    @staticmethod
    def _as_center_map(collection: ClusterCollection):
        return collection.vertex_to_center()

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_frozenset_reference(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(1, 40)
        table = ClusterTable.singletons(n)
        reference = ClusterCollection.singletons(n)

        for _step in range(rng.randrange(1, 5)):
            centers = reference.centers()
            assert table.centers() == centers
            if not centers:
                break
            # Random superclustering step: every center is spanned with
            # probability 1/2; spanned centers group under a random root
            # drawn from the spanned set.
            spanned = [c for c in centers if rng.random() < 0.5]
            center_root = {}
            if spanned:
                roots = [c for c in spanned if rng.random() < 0.4] or [spanned[0]]
                for c in spanned:
                    center_root[c] = rng.choice(roots)
                for r in roots:
                    center_root[r] = r
            next_reference, unclustered_ref = build_superclusters(
                reference, center_root
            )
            unclustered_flat = table.supercluster(center_root)

            # The retired views agree with the reference U_i ...
            assert unclustered_flat.vertex_to_center() == self._as_center_map(
                unclustered_ref
            )
            assert len(unclustered_flat) == len(unclustered_ref)
            assert unclustered_flat.centers() == unclustered_ref.centers()
            # ... and the live table agrees with the reference P_{i+1}.
            snapshot = table.snapshot()
            assert snapshot.vertex_to_center() == self._as_center_map(next_reference)
            assert snapshot.centers() == next_reference.centers()
            assert [c.size for c in snapshot] == [
                cluster.size for cluster in next_reference.clusters()
            ]
            for cluster in next_reference:
                handle = snapshot.by_center(cluster.center)
                assert frozenset(handle.members) == cluster.vertices
            reference = next_reference


class TestEnginePhaseBoundaries:
    """On real runs the table keeps the partition property at every boundary."""

    @pytest.mark.parametrize("engine", ["centralized", "distributed"])
    def test_partition_property_each_phase(self, engine):
        graph = gnp_random_graph(36, 0.12, seed=7)
        parameters = make_parameters(0.25, 3, 1.0 / 3.0, epsilon_is_internal=True)
        result = build_spanner(graph, parameters=parameters, engine=engine)
        n = graph.num_vertices

        # U_0..U_ell partition V (Corollary 2.5) via the flat checker.
        assert flat_collections_partition_vertices(
            result.unclustered_history, n
        )
        # Every P_i is internally a partition of a subset of V, and
        # P_{i+1} + U_i together cover exactly the vertices of P_i.
        for i, p_i in enumerate(result.cluster_history):
            assert p_i.is_vertex_disjoint()
            if i < len(result.unclustered_history):
                u_i = result.unclustered_history[i]
                if i + 1 < len(result.cluster_history):
                    p_next = result.cluster_history[i + 1]
                    assert flat_collections_partition_vertices(
                        [p_next, u_i], n
                    ) == (p_i.total_vertices() == n)
                    assert (
                        p_next.total_vertices() + u_i.total_vertices()
                        == p_i.total_vertices()
                    )

    def test_phase_counters_match_views(self):
        graph = gnp_random_graph(30, 0.15, seed=3)
        parameters = make_parameters(0.25, 3, 1.0 / 3.0, epsilon_is_internal=True)
        result = build_spanner(graph, parameters=parameters, engine="centralized")
        for record in result.phase_records:
            p_i = result.cluster_history[record.index]
            u_i = result.unclustered_history[record.index]
            assert record.num_clusters == len(p_i)
            assert record.num_unclustered == len(u_i)
            assert record.cluster_merges + record.num_unclustered == record.num_clusters
            if record.index + 1 < len(result.cluster_history):
                assert record.clusters_out == len(
                    result.cluster_history[record.index + 1]
                )
