"""Tests for cluster / cluster-collection bookkeeping."""

from __future__ import annotations

import pytest

from repro.core import Cluster, ClusterCollection, collections_partition_vertices
from repro.graphs import Graph, path_graph


class TestCluster:
    def test_singleton(self):
        cluster = Cluster.singleton(4)
        assert cluster.center == 4
        assert cluster.vertices == frozenset({4})
        assert cluster.size == 1
        assert 4 in cluster

    def test_center_must_belong(self):
        with pytest.raises(ValueError):
            Cluster(center=0, vertices=frozenset({1, 2}))

    def test_merge_unions_vertices(self):
        merged = Cluster.merge(1, [Cluster.singleton(1), Cluster.singleton(5), Cluster.singleton(7)])
        assert merged.center == 1
        assert merged.vertices == frozenset({1, 5, 7})

    def test_merge_center_must_be_member(self):
        with pytest.raises(ValueError):
            Cluster.merge(9, [Cluster.singleton(1), Cluster.singleton(2)])

    def test_radius_in_graph(self):
        graph = path_graph(5)
        cluster = Cluster(center=2, vertices=frozenset({0, 2, 4}))
        assert cluster.radius_in(graph) == 2

    def test_radius_unreachable_member_raises(self):
        graph = Graph(4, [(0, 1)])
        cluster = Cluster(center=0, vertices=frozenset({0, 3}))
        with pytest.raises(ValueError):
            cluster.radius_in(graph)


class TestClusterCollection:
    def test_singletons(self):
        collection = ClusterCollection.singletons(4)
        assert len(collection) == 4
        assert collection.centers() == [0, 1, 2, 3]
        assert collection.total_vertices() == 4

    def test_duplicate_centers_rejected(self):
        collection = ClusterCollection([Cluster.singleton(0)])
        with pytest.raises(ValueError):
            collection.add(Cluster(center=0, vertices=frozenset({0, 1})))

    def test_contains_and_lookup(self):
        collection = ClusterCollection.singletons(3)
        assert 2 in collection
        assert 5 not in collection
        assert collection.by_center(1).vertices == frozenset({1})

    def test_vertex_to_center(self):
        collection = ClusterCollection(
            [Cluster(0, frozenset({0, 1})), Cluster(3, frozenset({3}))]
        )
        assert collection.vertex_to_center() == {0: 0, 1: 0, 3: 3}

    def test_vertex_to_center_detects_overlap(self):
        collection = ClusterCollection(
            [Cluster(0, frozenset({0, 1})), Cluster(1, frozenset({1}))]
        )
        with pytest.raises(ValueError):
            collection.vertex_to_center()
        assert not collection.is_vertex_disjoint()

    def test_vertex_set(self):
        collection = ClusterCollection([Cluster(0, frozenset({0, 2})), Cluster(4, frozenset({4}))])
        assert collection.vertex_set() == {0, 2, 4}

    def test_max_radius_in(self):
        graph = path_graph(6)
        collection = ClusterCollection(
            [Cluster(0, frozenset({0, 1})), Cluster(4, frozenset({3, 4, 5}))]
        )
        assert collection.max_radius_in(graph) == 1
        assert ClusterCollection().max_radius_in(graph) == 0

    def test_summary(self):
        collection = ClusterCollection([Cluster(0, frozenset({0, 1, 2})), Cluster(5, frozenset({5}))])
        summary = collection.summary()
        assert summary == {"num_clusters": 2, "num_vertices": 4, "max_cluster_size": 3}

    def test_iteration_order_is_insertion_order(self):
        clusters = [Cluster.singleton(3), Cluster.singleton(1)]
        collection = ClusterCollection(clusters)
        assert [c.center for c in collection] == [3, 1]


class TestPartitionCheck:
    def test_partition_accepts_exact_cover(self):
        a = ClusterCollection([Cluster(0, frozenset({0, 1}))])
        b = ClusterCollection([Cluster(2, frozenset({2}))])
        assert collections_partition_vertices([a, b], 3)

    def test_partition_rejects_overlap(self):
        a = ClusterCollection([Cluster(0, frozenset({0, 1}))])
        b = ClusterCollection([Cluster(1, frozenset({1, 2}))])
        assert not collections_partition_vertices([a, b], 3)

    def test_partition_rejects_missing_vertex(self):
        a = ClusterCollection([Cluster(0, frozenset({0}))])
        assert not collections_partition_vertices([a], 2)
