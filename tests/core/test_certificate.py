"""Tests for the edge-provenance certificate."""

from __future__ import annotations

import pytest

from repro.core import INTERCONNECTION_STEP, SUPERCLUSTERING_STEP, SpannerCertificate


def test_record_counts_new_edges_only():
    cert = SpannerCertificate()
    assert cert.record([(0, 1), (1, 2)], phase=0, step=SUPERCLUSTERING_STEP) == 2
    assert cert.record([(1, 0), (2, 3)], phase=1, step=INTERCONNECTION_STEP) == 1
    assert len(cert) == 3


def test_first_provenance_wins():
    cert = SpannerCertificate()
    cert.record([(0, 1)], phase=0, step=SUPERCLUSTERING_STEP)
    cert.record([(0, 1)], phase=2, step=INTERCONNECTION_STEP)
    assert cert.provenance[(0, 1)].phase == 0
    assert cert.provenance[(0, 1)].step == SUPERCLUSTERING_STEP


def test_unknown_step_rejected():
    cert = SpannerCertificate()
    with pytest.raises(ValueError):
        cert.record([(0, 1)], phase=0, step="bogus")


def test_edges_are_normalized():
    cert = SpannerCertificate()
    cert.record([(5, 2)], phase=0, step=INTERCONNECTION_STEP)
    assert (2, 5) in cert
    assert (5, 2) in cert
    assert cert.edges() == [(2, 5)]


def test_edges_for_phase_and_step():
    cert = SpannerCertificate()
    cert.record([(0, 1)], phase=0, step=SUPERCLUSTERING_STEP)
    cert.record([(1, 2), (2, 3)], phase=1, step=INTERCONNECTION_STEP)
    assert cert.edges_for_phase(1) == [(1, 2), (2, 3)]
    assert cert.edges_for_step(SUPERCLUSTERING_STEP) == [(0, 1)]


def test_count_by_phase_and_step():
    cert = SpannerCertificate()
    cert.record([(0, 1), (1, 2)], phase=0, step=SUPERCLUSTERING_STEP)
    cert.record([(3, 4)], phase=0, step=INTERCONNECTION_STEP)
    counts = cert.count_by_phase_and_step()
    assert counts[(0, SUPERCLUSTERING_STEP)] == 2
    assert counts[(0, INTERCONNECTION_STEP)] == 1


def test_summary_totals():
    cert = SpannerCertificate()
    cert.record([(0, 1)], phase=0, step=SUPERCLUSTERING_STEP)
    cert.record([(1, 2), (2, 3)], phase=1, step=INTERCONNECTION_STEP)
    summary = cert.summary()
    assert summary["superclustering"] == 1
    assert summary["interconnection"] == 2
    assert summary["total"] == 3
