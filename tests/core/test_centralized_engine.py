"""Integration tests for the centralized reference engine.

Every exact statement of the paper is verified on concrete runs over a range
of graph families and parameter settings via ``repro.analysis.verify_run``,
plus end-to-end stretch, size and subgraph checks.
"""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_stretch, size_report, verify_run
from repro.core import SpannerParameters, build_spanner
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_random_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)

PARAMETER_SETTINGS = [
    SpannerParameters.from_internal_epsilon(0.25, kappa=3, rho=1 / 3),
    SpannerParameters.from_internal_epsilon(0.5, kappa=2, rho=0.5),
    SpannerParameters.from_internal_epsilon(0.2, kappa=4, rho=0.4),
]


@pytest.mark.parametrize("parameters", PARAMETER_SETTINGS, ids=["k3", "k2", "k4"])
def test_all_lemmas_hold_on_every_graph_family(any_graph, parameters):
    result = build_spanner(any_graph, parameters=parameters)
    report = verify_run(result)
    assert report.all_passed, [f"{c.name}: {c.details}" for c in report.failures()]


@pytest.mark.parametrize("parameters", PARAMETER_SETTINGS, ids=["k3", "k2", "k4"])
def test_stretch_guarantee_holds_exactly(any_graph, parameters):
    result = build_spanner(any_graph, parameters=parameters)
    stretch = evaluate_stretch(any_graph, result.spanner, guarantee=parameters.stretch_bound())
    assert stretch.satisfies_guarantee, stretch.violations[:3]


def test_spanner_is_subgraph_and_preserves_components(medium_random, default_params):
    result = build_spanner(medium_random, parameters=default_params)
    assert result.spanner.is_subgraph_of(medium_random)
    report = verify_run(result)
    assert report.by_name("connectivity-preserved").passed


def test_size_within_theoretical_bound(medium_random, default_params):
    result = build_spanner(medium_random, parameters=default_params)
    assert size_report(result).within_bound


def test_unclustered_collections_partition_vertices(community_graph, default_params):
    result = build_spanner(community_graph, parameters=default_params)
    assert result.unclustered_partitions_vertices()


def test_phase_records_cover_all_phases(medium_random, default_params):
    result = build_spanner(medium_random, parameters=default_params)
    assert [r.index for r in result.phase_records] == list(default_params.phases())
    assert result.phase(0).num_clusters == medium_random.num_vertices
    with pytest.raises(KeyError):
        result.phase(99)


def test_cluster_count_shrinks_by_degree_threshold(community_graph, default_params):
    """|P_{i+1}| <= |P_i| / deg_i -- the counting heart of Lemmas 2.10/2.11."""
    result = build_spanner(community_graph, parameters=default_params)
    for current, nxt in zip(result.phase_records, result.phase_records[1:]):
        if nxt.num_clusters:
            assert nxt.num_clusters <= current.num_clusters / current.degree_threshold + 1e-9


def test_concluding_phase_has_no_popular_clusters(community_graph, default_params):
    result = build_spanner(community_graph, parameters=default_params)
    assert result.phase_records[-1].num_popular == 0


def test_no_superclustering_in_concluding_phase(community_graph, default_params):
    result = build_spanner(community_graph, parameters=default_params)
    last = result.phase_records[-1]
    assert last.ruling_set_size == 0
    assert last.superclustering_edges == 0
    assert last.num_unclustered == last.num_clusters


class TestDegenerateGraphs:
    def test_empty_graph(self, default_params):
        result = build_spanner(empty_graph(6), parameters=default_params)
        assert result.num_edges == 0
        assert result.unclustered_partitions_vertices()

    def test_single_vertex(self, default_params):
        result = build_spanner(Graph(1), parameters=default_params)
        assert result.num_edges == 0

    def test_zero_vertices(self, default_params):
        result = build_spanner(Graph(0), parameters=default_params)
        assert result.num_edges == 0

    def test_single_edge(self, default_params):
        result = build_spanner(Graph(2, [(0, 1)]), parameters=default_params)
        assert result.spanner.has_edge(0, 1)

    def test_star_keeps_all_edges_reachable(self, default_params):
        graph = star_graph(8)
        result = build_spanner(graph, parameters=default_params)
        stretch = evaluate_stretch(graph, result.spanner, guarantee=default_params.stretch_bound())
        assert stretch.satisfies_guarantee

    def test_complete_graph_is_heavily_sparsified(self, default_params):
        graph = complete_graph(30)
        result = build_spanner(graph, parameters=default_params)
        assert result.num_edges < graph.num_edges
        assert verify_run(result).all_passed

    def test_disconnected_graph(self, default_params):
        graph = Graph(10, [(0, 1), (1, 2), (5, 6), (6, 7), (7, 8)])
        result = build_spanner(graph, parameters=default_params)
        report = verify_run(result)
        assert report.all_passed
        stretch = evaluate_stretch(graph, result.spanner, guarantee=default_params.stretch_bound())
        assert stretch.disconnected_mismatches == 0

    def test_tree_input_keeps_every_edge_distance(self, default_params):
        graph = path_graph(20)
        result = build_spanner(graph, parameters=default_params)
        # A path has no redundant edges; connectivity preservation forces all of them.
        assert result.num_edges == graph.num_edges


class TestUserEpsilonMode:
    def test_user_epsilon_guarantee(self, small_random):
        result = build_spanner(small_random, epsilon=0.5, kappa=3, rho=1 / 3)
        guarantee = result.parameters.stretch_bound()
        assert guarantee.multiplicative <= 1.5 + 1e-6
        stretch = evaluate_stretch(small_random, result.spanner, guarantee=guarantee)
        assert stretch.satisfies_guarantee

    def test_defaults_produce_valid_run(self, small_random):
        result = build_spanner(small_random)
        assert verify_run(result, check_interconnection_paths=False).all_passed
