"""Tests for the public build_spanner / make_parameters API and result objects."""

from __future__ import annotations

import pytest

from repro import build_spanner, make_parameters
from repro.congest import Simulator
from repro.core import ENGINE_CENTRALIZED, ENGINE_DISTRIBUTED
from repro.graphs import gnp_random_graph


@pytest.fixture
def graph():
    return gnp_random_graph(35, 0.1, seed=1)


def test_make_parameters_user_mode():
    params = make_parameters(0.5, 3, 1 / 3)
    assert params.user_epsilon == 0.5
    assert params.stretch_bound().multiplicative <= 1.5 + 1e-6


def test_make_parameters_internal_mode():
    params = make_parameters(0.25, 3, 1 / 3, epsilon_is_internal=True)
    assert params.epsilon == 0.25
    assert params.user_epsilon is None


def test_unknown_engine_rejected(graph):
    with pytest.raises(ValueError):
        build_spanner(graph, engine="quantum")


def test_simulator_only_valid_for_distributed_engine(graph):
    with pytest.raises(ValueError):
        build_spanner(graph, engine=ENGINE_CENTRALIZED, simulator=Simulator(graph))


def test_explicit_parameters_override_scalars(graph, default_params):
    result = build_spanner(graph, epsilon=0.9, kappa=2, rho=0.5, parameters=default_params)
    assert result.parameters is default_params


def test_result_to_dict_round_trips_key_fields(graph, default_params):
    result = build_spanner(graph, parameters=default_params)
    data = result.to_dict()
    assert data["engine"] == ENGINE_CENTRALIZED
    assert data["num_vertices"] == graph.num_vertices
    assert data["num_spanner_edges"] == result.num_edges
    assert len(data["phases"]) == default_params.num_phases
    assert data["ledger"] is None


def test_result_to_dict_distributed_includes_ledger(graph, default_params):
    result = build_spanner(graph, parameters=default_params, engine=ENGINE_DISTRIBUTED)
    data = result.to_dict()
    assert data["ledger"] is not None
    assert data["ledger"]["nominal_rounds"] == result.nominal_rounds


def test_edges_by_step_sums_to_total(graph, default_params):
    result = build_spanner(graph, parameters=default_params)
    by_step = result.edges_by_step()
    assert by_step["total"] == result.num_edges
    assert by_step["superclustering"] + by_step["interconnection"] == by_step["total"]


def test_clusters_at_phase_accessors(graph, default_params):
    result = build_spanner(graph, parameters=default_params)
    assert len(result.clusters_at_phase(0)) == graph.num_vertices
    assert result.unclustered_at_phase(0) is result.unclustered_history[0]


def test_top_level_package_exports():
    import repro

    assert repro.__version__
    assert callable(repro.build_spanner)
    assert callable(repro.build_spanner_centralized)
    assert callable(repro.build_spanner_distributed)
