"""Property-based (hypothesis) tests of the end-to-end spanner construction."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import evaluate_stretch
from repro.core import SpannerParameters, build_spanner
from repro.graphs import gnp_random_graph

parameter_strategy = st.sampled_from(
    [
        SpannerParameters.from_internal_epsilon(0.25, kappa=3, rho=1 / 3),
        SpannerParameters.from_internal_epsilon(0.5, kappa=2, rho=0.5),
        SpannerParameters.from_internal_epsilon(0.34, kappa=4, rho=0.3),
    ]
)

graph_strategy = st.builds(
    gnp_random_graph,
    num_vertices=st.integers(min_value=2, max_value=36),
    edge_probability=st.floats(min_value=0.0, max_value=0.45),
    seed=st.integers(min_value=0, max_value=5_000),
)


@settings(max_examples=25, deadline=None)
@given(graph=graph_strategy, parameters=parameter_strategy)
def test_spanner_is_subgraph_with_guaranteed_stretch(graph, parameters):
    result = build_spanner(graph, parameters=parameters)
    assert result.spanner.is_subgraph_of(graph)
    stretch = evaluate_stretch(graph, result.spanner, guarantee=parameters.stretch_bound())
    assert stretch.satisfies_guarantee
    assert stretch.disconnected_mismatches == 0


@settings(max_examples=25, deadline=None)
@given(graph=graph_strategy, parameters=parameter_strategy)
def test_unclustered_history_partitions_vertices(graph, parameters):
    result = build_spanner(graph, parameters=parameters)
    assert result.unclustered_partitions_vertices()


@settings(max_examples=25, deadline=None)
@given(graph=graph_strategy, parameters=parameter_strategy)
def test_cluster_radii_and_counts_respect_bounds(graph, parameters):
    result = build_spanner(graph, parameters=parameters)
    bounds = parameters.radius_bounds()
    n = max(1, graph.num_vertices)
    for i, collection in enumerate(result.cluster_history):
        if len(collection):
            assert collection.max_radius_in(result.spanner) <= bounds[i]
    for record in result.phase_records:
        i = record.index
        if i <= parameters.i0 + 1:
            bound = n ** (1.0 - (2 ** i - 1) / parameters.kappa)
        else:
            bound = n ** (1.0 + 1.0 / parameters.kappa - (i - parameters.i0) * parameters.rho)
        assert record.num_clusters <= bound * (1 + 1e-9)


@settings(max_examples=15, deadline=None)
@given(
    graph=st.builds(
        gnp_random_graph,
        num_vertices=st.integers(min_value=2, max_value=22),
        edge_probability=st.floats(min_value=0.0, max_value=0.4),
        seed=st.integers(min_value=0, max_value=2_000),
    ),
    parameters=parameter_strategy,
)
def test_distributed_engine_properties(graph, parameters):
    result = build_spanner(graph, parameters=parameters, engine="distributed")
    assert result.spanner.is_subgraph_of(graph)
    assert result.ledger is not None
    assert result.ledger.max_edge_congestion <= 1
    stretch = evaluate_stretch(graph, result.spanner, guarantee=parameters.stretch_bound())
    assert stretch.satisfies_guarantee
