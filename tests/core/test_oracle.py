"""Tests for the spanner-backed approximate distance oracle."""

from __future__ import annotations

import pytest

from repro import SpannerDistanceOracle
from repro.graphs import INFINITY, Graph, clustered_path_graph, gnp_random_graph, pairwise_distance


@pytest.fixture(scope="module")
def oracle():
    graph = clustered_path_graph(6, 8)
    return SpannerDistanceOracle(graph, epsilon=0.5, kappa=3, rho=1 / 3)


def test_distance_respects_guarantee(oracle):
    guarantee = oracle.guarantee
    for u, v in [(0, 47), (0, 1), (3, 40), (10, 30)]:
        exact = pairwise_distance(oracle.graph, u, v)
        approx = oracle.distance(u, v)
        assert approx >= exact
        assert approx <= guarantee.multiplicative * exact + guarantee.additive + 1e-9


def test_distances_from_matches_single_queries(oracle):
    vector = oracle.distances_from(0)
    assert vector[5] == oracle.distance(0, 5)
    assert len(vector) == oracle.graph.num_vertices


def test_path_is_valid_and_matches_distance(oracle):
    path = oracle.path(0, 47)
    assert path[0] == 0 and path[-1] == 47
    for a, b in zip(path, path[1:]):
        assert oracle.spanner.has_edge(a, b)
    assert len(path) - 1 == oracle.distance(0, 47)


def test_disconnected_pairs():
    graph = Graph(4, [(0, 1), (2, 3)])
    oracle = SpannerDistanceOracle(graph)
    assert oracle.distance(0, 3) == INFINITY
    assert oracle.path(0, 3) is None
    assert oracle.error_bound(0, 3) == 0.0


def test_error_bound_dominates_actual_error(oracle):
    for u, v in [(0, 47), (4, 44)]:
        exact = pairwise_distance(oracle.graph, u, v)
        assert oracle.distance(u, v) - exact <= oracle.error_bound(u, v) + 1e-9


def test_compression_and_edge_count(oracle):
    assert 0 < oracle.compression_ratio() <= 1.0
    assert oracle.num_spanner_edges == oracle.spanner.num_edges


def test_source_caching_returns_same_answers():
    graph = gnp_random_graph(40, 0.1, seed=3)
    cached = SpannerDistanceOracle(graph, cache_sources=True)
    uncached = SpannerDistanceOracle(graph, cache_sources=False)
    for v in (1, 7, 20):
        assert cached.distance(0, v) == cached.distance(0, v)
        assert cached.distance(0, v) == uncached.distance(0, v)


def test_distributed_engine_oracle():
    graph = gnp_random_graph(30, 0.12, seed=4)
    oracle = SpannerDistanceOracle(graph, engine="distributed")
    exact = pairwise_distance(graph, 0, 15)
    if exact != INFINITY:
        assert oracle.distance(0, 15) >= exact
