"""Tests for the parameter schedules (Section 2.1 / 2.4.4)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    CONCLUDING_STAGE,
    EXPONENTIAL_STAGE,
    FIXED_STAGE,
    SpannerParameters,
    StretchGuarantee,
    guarantee_from_schedules,
)


class TestValidation:
    def test_valid_construction(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        assert params.kappa == 3

    def test_kappa_must_be_integer(self):
        with pytest.raises(TypeError):
            SpannerParameters(epsilon=0.25, kappa=3.5, rho=0.4)  # type: ignore[arg-type]

    def test_kappa_lower_bound(self):
        with pytest.raises(ValueError):
            SpannerParameters(epsilon=0.25, kappa=1, rho=0.5)

    def test_epsilon_range(self):
        with pytest.raises(ValueError):
            SpannerParameters(epsilon=0.0, kappa=3, rho=0.4)
        with pytest.raises(ValueError):
            SpannerParameters(epsilon=1.5, kappa=3, rho=0.4)

    def test_rho_lower_bound_is_one_over_kappa(self):
        with pytest.raises(ValueError):
            SpannerParameters(epsilon=0.5, kappa=3, rho=0.2)
        SpannerParameters(epsilon=0.5, kappa=3, rho=1 / 3)  # boundary is allowed

    def test_rho_upper_bound(self):
        with pytest.raises(ValueError):
            SpannerParameters(epsilon=0.5, kappa=4, rho=0.6)


class TestPhaseStructure:
    def test_phase_count_matches_paper_formula(self):
        # ell = floor(log2(kappa*rho)) + ceil((kappa+1)/(kappa*rho)) - 1
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        assert params.i0 == 0
        assert params.ell == 3
        assert params.num_phases == 4
        assert params.i1 == 2

    def test_phase_count_kappa2(self):
        params = SpannerParameters(epsilon=0.5, kappa=2, rho=0.5)
        assert params.i0 == 0
        assert params.ell == 2

    def test_phase_count_large_kappa(self):
        params = SpannerParameters(epsilon=0.5, kappa=8, rho=0.5)
        assert params.i0 == 2
        assert params.ell == 2 + math.ceil(9 / 4) - 1

    def test_stage_assignment(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        assert params.stage(0) == EXPONENTIAL_STAGE
        assert params.stage(1) == FIXED_STAGE
        assert params.stage(params.i1) == FIXED_STAGE
        assert params.stage(params.ell) == CONCLUDING_STAGE

    def test_stage_out_of_range(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        with pytest.raises(ValueError):
            params.stage(params.ell + 1)

    def test_domination_multiplier(self):
        assert SpannerParameters(0.5, 3, 1 / 3).domination_multiplier == 3
        assert SpannerParameters(0.5, 2, 0.5).domination_multiplier == 2
        assert SpannerParameters(0.5, 5, 0.3).domination_multiplier == 4


class TestSchedules:
    def test_radius_bounds_recurrence(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        radii = params.radius_bounds()
        c = params.domination_multiplier
        assert radii[0] == 0
        for i in range(params.ell):
            delta_i = params.delta(i)
            assert radii[i + 1] == 2 * c * delta_i + radii[i]

    def test_delta_formula(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        radii = params.radius_bounds()
        for i in params.phases():
            assert params.delta(i) == math.ceil(0.25 ** (-i) - 1e-9) + 2 * radii[i]

    def test_delta_zero_is_one(self):
        params = SpannerParameters(epsilon=0.07, kappa=4, rho=0.3)
        assert params.delta(0) == 1

    def test_radii_strictly_increase(self):
        params = SpannerParameters(epsilon=0.25, kappa=4, rho=0.3)
        radii = params.radius_bounds()
        assert all(a < b for a, b in zip(radii, radii[1:]))

    def test_three_r_j_below_r_i(self):
        """The 3*R_j <= R_i premise of Lemma 2.15 must hold for j < i."""
        params = SpannerParameters(epsilon=0.3, kappa=5, rho=0.25)
        radii = params.radius_bounds()
        for i in range(1, len(radii)):
            for j in range(i):
                assert 3 * radii[j] <= radii[i]

    def test_delta_exceeds_twice_radius(self):
        params = SpannerParameters(epsilon=0.2, kappa=4, rho=0.3)
        for i in params.phases():
            assert params.delta(i) >= 2 * params.radius_bound(i) + 1

    def test_ruling_q_and_superclustering_depth(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        for i in range(params.ell):
            assert params.ruling_set_q(i) == 2 * params.delta(i)
            assert params.superclustering_depth(i) == params.domination_multiplier * 2 * params.delta(i)


class TestDegreeThresholds:
    def test_exponential_stage_growth(self):
        params = SpannerParameters(epsilon=0.25, kappa=8, rho=0.5)
        n = 10_000
        for i in range(params.i0 + 1):
            assert params.degree_threshold(i, n) == math.ceil(n ** (2 ** i / 8) - 1e-9)

    def test_fixed_stage_is_n_to_rho(self):
        params = SpannerParameters(epsilon=0.25, kappa=8, rho=0.5)
        n = 10_000
        for i in range(params.i0 + 1, params.ell + 1):
            assert params.degree_threshold(i, n) == math.ceil(n ** 0.5 - 1e-9)

    def test_all_thresholds_at_most_n_rho(self):
        params = SpannerParameters(epsilon=0.25, kappa=6, rho=0.4)
        n = 5000
        cap = math.ceil(n ** 0.4)
        assert all(d <= cap for d in params.degree_thresholds(n))

    def test_trivial_graph_threshold(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        assert params.degree_threshold(0, 1) == 1
        assert params.degree_threshold(0, 0) == 1


class TestGuarantee:
    def test_guarantee_from_schedules_base_case(self):
        guarantee = guarantee_from_schedules([0], [1])
        assert guarantee.multiplicative == 1.0
        assert guarantee.additive == 0.0

    def test_guarantee_from_schedules_mismatched_lengths(self):
        with pytest.raises(ValueError):
            guarantee_from_schedules([0, 1], [1])

    def test_guarantee_recurrence(self):
        radii = [0, 2, 10]
        deltas = [1, 6, 30]
        guarantee = guarantee_from_schedules(radii, deltas)
        b1 = 6 * 2 + 0
        a1 = b1 / (6 - 4)
        b2 = 6 * 10 + 2 * b1
        a2 = a1 + b2 / (30 - 20)
        assert guarantee.additive == pytest.approx(b2)
        assert guarantee.multiplicative == pytest.approx(1 + a2)

    def test_smaller_epsilon_gives_smaller_multiplicative(self):
        big = SpannerParameters(epsilon=0.5, kappa=3, rho=1 / 3).stretch_bound()
        small = SpannerParameters(epsilon=0.05, kappa=3, rho=1 / 3).stretch_bound()
        assert small.multiplicative < big.multiplicative

    def test_from_user_epsilon_meets_target(self):
        for target in (0.25, 0.5, 1.0):
            params = SpannerParameters.from_user_epsilon(target, kappa=3, rho=1 / 3)
            assert params.stretch_bound().multiplicative <= 1 + target + 1e-6
            assert params.user_epsilon == target

    def test_from_user_epsilon_validates(self):
        with pytest.raises(ValueError):
            SpannerParameters.from_user_epsilon(0.0, kappa=3, rho=1 / 3)

    def test_guarantee_allows(self):
        guarantee = StretchGuarantee(multiplicative=1.5, additive=4.0)
        assert guarantee.allows(10, 19)
        assert not guarantee.allows(10, 19.5)

    def test_paper_beta_is_epsilon_to_minus_ell(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        assert params.paper_beta() == pytest.approx(0.25 ** (-3))

    def test_beta_shortcut(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        assert params.beta() == params.stretch_bound().additive


class TestResourceBoundsAndReporting:
    def test_size_bound_monotone_in_n(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        assert params.size_bound(200) < params.size_bound(400)

    def test_round_bound_monotone_in_n(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        assert params.round_bound(200) < params.round_bound(400)

    def test_describe_contains_key_fields(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        info = params.describe(100)
        for key in ("ell", "radius_bounds", "deltas", "degree_thresholds", "size_bound", "round_bound"):
            assert key in info
        assert len(info["radius_bounds"]) == params.num_phases

    def test_describe_without_n_omits_resource_bounds(self):
        info = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3).describe()
        assert "size_bound" not in info

    def test_segment_length_positive(self):
        params = SpannerParameters(epsilon=0.9, kappa=3, rho=1 / 3)
        for i in params.phases():
            assert params.segment_length(i) >= 1

    def test_parameters_are_frozen(self):
        params = SpannerParameters(epsilon=0.25, kappa=3, rho=1 / 3)
        with pytest.raises(AttributeError):
            params.epsilon = 0.5  # type: ignore[misc]
