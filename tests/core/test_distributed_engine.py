"""Integration tests for the CONGEST-simulated engine."""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_stretch, verify_run
from repro.congest import Simulator
from repro.core import SpannerParameters, build_spanner
from repro.graphs import Graph, cycle_graph, gnp_random_graph, grid_graph, planted_partition_graph

SMALL_GRAPHS = {
    "cycle": cycle_graph(12),
    "grid": grid_graph(6, 6),
    "gnp": gnp_random_graph(45, 0.08, seed=3),
    "planted": planted_partition_graph(4, 9, 0.6, 0.03, seed=1),
    "disconnected": Graph(12, [(0, 1), (1, 2), (2, 3), (6, 7), (7, 8), (9, 10)]),
}


@pytest.fixture(params=sorted(SMALL_GRAPHS.keys()))
def small_graph(request):
    return SMALL_GRAPHS[request.param]


def test_all_lemmas_hold(small_graph, default_params):
    result = build_spanner(small_graph, parameters=default_params, engine="distributed")
    report = verify_run(result)
    assert report.all_passed, [f"{c.name}: {c.details}" for c in report.failures()]


def test_stretch_guarantee_holds(small_graph, default_params):
    result = build_spanner(small_graph, parameters=default_params, engine="distributed")
    stretch = evaluate_stretch(small_graph, result.spanner, guarantee=default_params.stretch_bound())
    assert stretch.satisfies_guarantee


def test_congestion_never_exceeds_one_message_per_edge(small_graph, default_params):
    simulator = Simulator(small_graph, strict_congestion=True)
    result = build_spanner(
        small_graph, parameters=default_params, engine="distributed", simulator=simulator
    )
    assert result.ledger is simulator.ledger
    assert simulator.ledger.max_edge_congestion <= 1


def test_nominal_rounds_within_theoretical_bound(small_graph, default_params):
    result = build_spanner(small_graph, parameters=default_params, engine="distributed")
    assert result.nominal_rounds <= default_params.round_bound(small_graph.num_vertices)


def test_simulated_rounds_much_smaller_than_nominal(default_params):
    graph = gnp_random_graph(40, 0.1, seed=5)
    result = build_spanner(graph, parameters=default_params, engine="distributed")
    assert result.ledger is not None
    assert result.ledger.simulated_rounds <= result.ledger.nominal_rounds


def test_ledger_phases_cover_all_steps(default_params):
    graph = planted_partition_graph(4, 8, 0.6, 0.05, seed=2)
    result = build_spanner(graph, parameters=default_params, engine="distributed")
    labels = {charge.label.split(":")[1] for charge in result.ledger.charges if ":" in charge.label}
    assert "explore" in labels
    assert "interconnect" in labels
    # superclustering steps appear whenever popular clusters existed
    if any(r.num_popular for r in result.phase_records):
        assert "ruling-set" in labels or "forest" in labels


def test_external_simulator_must_match_graph(default_params):
    graph_a = cycle_graph(8)
    graph_b = cycle_graph(9)
    with pytest.raises(ValueError):
        build_spanner(graph_a, parameters=default_params, engine="distributed", simulator=Simulator(graph_b))


def test_second_parameter_setting(default_params, tight_params):
    graph = grid_graph(5, 5)
    result = build_spanner(graph, parameters=tight_params, engine="distributed")
    assert verify_run(result).all_passed
