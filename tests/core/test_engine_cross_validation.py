"""Cross-validation: the distributed engine agrees with the centralized one.

The two engines share the phase logic but exchange information very
differently (message passing with truncation vs. global knowledge); the paper
guarantees they agree on all *structural* quantities -- popular sets, ruling
sets, cluster collections -- and both must satisfy the same guarantees.
"""

from __future__ import annotations

import pytest

from repro.core import build_spanner
from repro.graphs import cycle_graph, gnp_random_graph, grid_graph, planted_partition_graph

GRAPHS = {
    "gnp": gnp_random_graph(40, 0.1, seed=7),
    "grid": grid_graph(6, 6),
    "cycle": cycle_graph(15),
    "planted": planted_partition_graph(4, 8, 0.6, 0.04, seed=4),
}


@pytest.fixture(params=sorted(GRAPHS.keys()))
def graph(request):
    return GRAPHS[request.param]


@pytest.fixture
def both_results(graph, default_params):
    centralized = build_spanner(graph, parameters=default_params, engine="centralized")
    distributed = build_spanner(graph, parameters=default_params, engine="distributed")
    return centralized, distributed


def test_popular_sets_match(both_results):
    centralized, distributed = both_results
    for rc, rd in zip(centralized.phase_records, distributed.phase_records):
        assert rc.popular_centers == rd.popular_centers


def test_ruling_sets_match(both_results):
    centralized, distributed = both_results
    for rc, rd in zip(centralized.phase_records, distributed.phase_records):
        assert rc.ruling_set == rd.ruling_set


def test_cluster_collections_match(both_results):
    centralized, distributed = both_results
    assert len(centralized.cluster_history) == len(distributed.cluster_history)
    for pc, pd in zip(centralized.cluster_history, distributed.cluster_history):
        assert pc.centers() == pd.centers()
        assert pc.vertex_to_center() == pd.vertex_to_center()


def test_unclustered_collections_match(both_results):
    centralized, distributed = both_results
    for uc, ud in zip(centralized.unclustered_history, distributed.unclustered_history):
        assert uc.centers() == ud.centers()


def test_interconnection_pairs_match(both_results):
    centralized, distributed = both_results
    for rc, rd in zip(centralized.phase_records, distributed.phase_records):
        assert sorted(rc.interconnection_pairs) == sorted(rd.interconnection_pairs)


def test_edge_counts_are_close(both_results):
    """Both engines add shortest paths for the same pairs; tie-breaking may differ slightly."""
    centralized, distributed = both_results
    assert centralized.num_edges <= distributed.num_edges * 1.5 + 5
    assert distributed.num_edges <= centralized.num_edges * 1.5 + 5
