"""Property tests for the frozen CSR adjacency snapshot."""

from __future__ import annotations

import pytest

from repro.graphs import (
    CSRGraph,
    Graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)


def _random_graphs():
    graphs = [
        Graph(0),
        Graph(5),
        path_graph(7),
        star_graph(6),
        grid_graph(4, 5),
        random_tree(33, seed=7),
    ]
    for seed in range(6):
        graphs.append(gnp_random_graph(40, 0.12, seed=seed))
    return graphs


class TestRoundTrip:
    @pytest.mark.parametrize("graph", _random_graphs(), ids=repr)
    def test_edges_degree_neighbors_round_trip(self, graph):
        csr = graph.csr()
        assert csr.num_vertices == graph.num_vertices
        assert csr.num_edges == graph.num_edges
        assert sorted(csr.edges()) == sorted(graph.edges())
        for v in graph.vertices():
            assert csr.degree(v) == graph.degree(v)
            assert list(csr.neighbors(v)) == sorted(graph.neighbors(v))

    @pytest.mark.parametrize("graph", _random_graphs(), ids=repr)
    def test_structure_invariants(self, graph):
        csr = graph.csr()
        n = graph.num_vertices
        assert len(csr.indptr) == n + 1
        assert csr.indptr[0] == 0
        assert csr.indptr[-1] == len(csr.adj) == 2 * graph.num_edges
        for v in range(n):
            row = csr.adj[csr.indptr[v] : csr.indptr[v + 1]]
            assert list(row) == sorted(row), f"row {v} is not sorted"
            assert len(set(row)) == len(row), f"row {v} has duplicates"

    def test_has_edge_matches_graph(self):
        graph = gnp_random_graph(30, 0.2, seed=3)
        csr = graph.csr()
        for u in range(30):
            for v in range(30):
                if u != v:
                    assert csr.has_edge(u, v) == graph.has_edge(u, v)


class TestSnapshotContract:
    def test_snapshot_is_cached_until_mutation(self):
        graph = path_graph(5)
        first = graph.csr()
        assert graph.csr() is first

    def test_mutation_invalidates_and_bumps_version(self):
        graph = path_graph(5)
        before = graph.csr()
        version = graph.version
        assert graph.add_edge(0, 4)
        assert graph.version == version + 1
        after = graph.csr()
        assert after is not before
        assert after.has_edge(0, 4)
        # The old snapshot is frozen: it still shows the pre-mutation topology.
        assert not before.has_edge(0, 4)
        assert before.num_edges == after.num_edges - 1

    def test_remove_edge_invalidates(self):
        graph = path_graph(5)
        graph.csr()
        version = graph.version
        assert graph.remove_edge(0, 1)
        assert graph.version == version + 1
        assert not graph.csr().has_edge(0, 1)
        assert sorted(graph.csr().edges()) == sorted(graph.edges())

    def test_noop_mutations_do_not_invalidate(self):
        graph = path_graph(5)
        snapshot = graph.csr()
        assert not graph.add_edge(0, 1)  # already present
        assert not graph.remove_edge(0, 3)  # never existed
        assert graph.csr() is snapshot

    def test_copy_shares_the_immutable_snapshot(self):
        graph = path_graph(6)
        snapshot = graph.csr()
        clone = graph.copy()
        assert clone.csr() is snapshot
        # Mutating the clone must not disturb the original's snapshot.
        clone.add_edge(0, 5)
        assert graph.csr() is snapshot
        assert clone.csr() is not snapshot

    def test_malformed_csr_rejected(self):
        from array import array

        with pytest.raises(ValueError):
            CSRGraph(array("q", [1, 2]), array("q", [0, 1]))
