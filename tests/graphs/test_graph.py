"""Unit tests for the core Graph data structure."""

from __future__ import annotations

import pytest

from repro.graphs import Graph, graph_from_edge_list, normalize_edge, union_of_edges


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_vertices_range(self):
        g = Graph(4)
        assert list(g.vertices()) == [0, 1, 2, 3]

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_construct_with_edges(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(2, 1)

    def test_duplicate_edges_collapsed(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_from_edge_list_helper(self):
        g = graph_from_edge_list(4, [(0, 3), (1, 2)])
        assert g.num_edges == 2

    def test_union_of_edges(self):
        g = union_of_edges(4, [(0, 1)], [(1, 2), (0, 1)], [(2, 3)])
        assert g.num_edges == 3


class TestMutation:
    def test_add_edge_returns_true_when_new(self):
        g = Graph(3)
        assert g.add_edge(0, 1) is True
        assert g.add_edge(0, 1) is False

    def test_self_loop_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_out_of_range_vertex_rejected(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.add_edge(0, 3)
        with pytest.raises(ValueError):
            g.add_edge(-1, 0)

    def test_add_edges_counts_new_only(self):
        g = Graph(4)
        assert g.add_edges([(0, 1), (1, 2), (0, 1)]) == 2

    def test_remove_edge(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.remove_edge(0, 1) is True
        assert g.remove_edge(0, 1) is False
        assert g.num_edges == 1
        assert not g.has_edge(0, 1)

    def test_degree_updates(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        assert g.degree(0) == 2
        assert g.degree(3) == 0
        g.remove_edge(0, 1)
        assert g.degree(0) == 1


class TestAccessors:
    def test_neighbors(self):
        g = Graph(4, [(0, 1), (0, 2)])
        assert g.neighbors(0) == {1, 2}
        assert g.neighbors(3) == set()

    def test_edges_canonical_order(self):
        g = Graph(4, [(3, 1), (2, 0)])
        assert sorted(g.edges()) == [(0, 2), (1, 3)]

    def test_edge_set(self):
        g = Graph(3, [(2, 1)])
        assert g.edge_set() == {(1, 2)}

    def test_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree() == 3
        assert Graph(0).max_degree() == 0

    def test_density(self):
        assert Graph(1).density() == 0.0
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert g.density() == pytest.approx(1.0)

    def test_adjacency_is_a_copy(self):
        g = Graph(3, [(0, 1)])
        adj = g.adjacency()
        adj[0].add(2)
        assert not g.has_edge(0, 2)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert h.has_edge(0, 1)

    def test_subgraph_from_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph_from_edges([(1, 2)])
        assert sub.num_vertices == 4
        assert sub.num_edges == 1

    def test_subgraph_rejects_foreign_edges(self):
        g = Graph(4, [(0, 1)])
        with pytest.raises(ValueError):
            g.subgraph_from_edges([(2, 3)])

    def test_is_subgraph_of(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph_from_edges([(0, 1), (2, 3)])
        assert sub.is_subgraph_of(g)
        assert not g.is_subgraph_of(sub)

    def test_is_subgraph_requires_same_vertex_count(self):
        assert not Graph(2).is_subgraph_of(Graph(3))


class TestDunder:
    def test_equality(self):
        assert Graph(3, [(0, 1)]) == Graph(3, [(1, 0)])
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])
        assert Graph(3) != Graph(4)

    def test_equality_with_non_graph(self):
        assert Graph(2).__eq__(42) is NotImplemented

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph(2))

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(n=3, m=1)"


def test_normalize_edge():
    assert normalize_edge(3, 1) == (1, 3)
    assert normalize_edge(1, 3) == (1, 3)
    assert normalize_edge(2, 2) == (2, 2)
