"""Property-based tests (hypothesis) for the graph substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    all_pairs_distances,
    bfs,
    bfs_distances,
    connected_components,
    gnp_random_graph,
    graph_from_dict,
    graph_to_dict,
    multi_source_bfs,
)

graph_strategy = st.builds(
    gnp_random_graph,
    num_vertices=st.integers(min_value=1, max_value=28),
    edge_probability=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=40, deadline=None)
@given(graph_strategy)
def test_serialization_round_trip(graph):
    assert graph_from_dict(graph_to_dict(graph)) == graph


@settings(max_examples=40, deadline=None)
@given(graph_strategy)
def test_bfs_distances_are_metric(graph):
    matrix = all_pairs_distances(graph)
    n = graph.num_vertices
    for u in range(n):
        assert matrix[u][u] == 0
        for v in range(n):
            assert matrix[u][v] == matrix[v][u]
    for u, v in graph.edges():
        assert matrix[u][v] == 1


@settings(max_examples=40, deadline=None)
@given(graph_strategy, st.integers(min_value=0, max_value=27))
def test_bfs_parents_are_edges(graph, source):
    source = source % graph.num_vertices
    result = bfs(graph, source)
    for v in range(graph.num_vertices):
        parent = result.parent[v]
        if parent is not None:
            assert graph.has_edge(v, parent)
            assert result.dist[v] == result.dist[parent] + 1


@settings(max_examples=40, deadline=None)
@given(graph_strategy)
def test_components_partition_vertices(graph):
    components = connected_components(graph)
    seen = [v for members in components for v in members]
    assert sorted(seen) == list(range(graph.num_vertices))


@settings(max_examples=40, deadline=None)
@given(graph_strategy, st.integers(min_value=1, max_value=5))
def test_multi_source_bfs_is_min_over_sources(graph, num_sources):
    sources = list(range(min(num_sources, graph.num_vertices)))
    combined = multi_source_bfs(graph, sources)
    separate = [bfs_distances(graph, s) for s in sources]
    for v in range(graph.num_vertices):
        best = min((d[v] for d in separate if v in d), default=None)
        assert combined.dist[v] == best


@settings(max_examples=40, deadline=None)
@given(graph_strategy, st.integers(min_value=0, max_value=6))
def test_depth_bounded_bfs_agrees_with_full_bfs(graph, depth):
    full = bfs_distances(graph, 0)
    bounded = bfs_distances(graph, 0, max_depth=depth)
    for v, d in bounded.items():
        assert full[v] == d
        assert d <= depth
    for v, d in full.items():
        if d <= depth:
            assert v in bounded
