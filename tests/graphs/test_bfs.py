"""Unit tests for centralized BFS utilities."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    ball,
    bfs,
    bfs_distances,
    bfs_layers,
    bfs_tree_edges,
    grid_graph,
    multi_source_bfs,
    path_graph,
    shortest_path,
    vertices_within,
)


class TestSingleSource:
    def test_distances_on_path(self, path_6):
        dist = bfs_distances(path_6, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}

    def test_max_depth_truncates(self, path_6):
        dist = bfs_distances(path_6, 0, max_depth=2)
        assert dist == {0: 0, 1: 1, 2: 2}

    def test_unreachable_vertices_missing(self):
        g = Graph(4, [(0, 1)])
        dist = bfs_distances(g, 0)
        assert 2 not in dist and 3 not in dist

    def test_parents_form_a_tree(self, grid_5x5):
        result = bfs(grid_5x5, 0)
        for v in range(1, 25):
            parent = result.parent[v]
            assert parent is not None
            assert result.dist[parent] == result.dist[v] - 1
            assert grid_5x5.has_edge(v, parent)

    def test_path_to_source(self, grid_5x5):
        result = bfs(grid_5x5, 0)
        path = result.path_to_source(24)
        assert path[0] == 24 and path[-1] == 0
        assert len(path) == result.dist[24] + 1

    def test_path_to_unreached_raises(self):
        g = Graph(3, [(0, 1)])
        result = bfs(g, 0)
        with pytest.raises(ValueError):
            result.path_to_source(2)

    def test_invalid_source_rejected(self, path_6):
        with pytest.raises(ValueError):
            bfs(path_6, 10)

    def test_tree_edges_count(self, grid_5x5):
        edges = bfs_tree_edges(grid_5x5, 0)
        assert len(edges) == 24
        assert all(grid_5x5.has_edge(u, v) for u, v in edges)


class TestMultiSource:
    def test_two_sources_split_a_path(self):
        g = path_graph(7)
        result = multi_source_bfs(g, [0, 6])
        assert result.dist == [0, 1, 2, 3, 2, 1, 0]
        assert result.source[1] == 0
        assert result.source[5] == 6

    def test_source_tie_break_is_deterministic(self):
        g = path_graph(5)
        first = multi_source_bfs(g, [0, 4])
        second = multi_source_bfs(g, [4, 0])
        assert first.dist == second.dist

    def test_duplicate_sources_tolerated(self, cycle_8):
        result = multi_source_bfs(cycle_8, [3, 3])
        assert result.dist[3] == 0

    def test_no_sources(self, path_6):
        result = multi_source_bfs(path_6, [])
        assert all(d is None for d in result.dist)

    def test_depth_zero_reaches_only_sources(self, cycle_8):
        result = multi_source_bfs(cycle_8, [0, 4], max_depth=0)
        assert [v for v in range(8) if result.reached(v)] == [0, 4]


class TestNeighbourhoods:
    def test_layers(self, cycle_8):
        layers = bfs_layers(cycle_8, 0)
        assert layers[0] == [0]
        assert layers[1] == [1, 7]
        assert layers[4] == [4]

    def test_ball(self, grid_5x5):
        assert ball(grid_5x5, 12, 1) == [7, 11, 12, 13, 17]

    def test_vertices_within_filters_targets(self, grid_5x5):
        targets = [0, 7, 13, 24]
        assert vertices_within(grid_5x5, 12, 1, targets) == [7, 13]

    def test_shortest_path(self, grid_5x5):
        path = shortest_path(grid_5x5, 0, 24)
        assert path[0] == 0 and path[-1] == 24
        assert len(path) == 9
        for a, b in zip(path, path[1:]):
            assert grid_5x5.has_edge(a, b)

    def test_shortest_path_disconnected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert shortest_path(g, 0, 3) is None
