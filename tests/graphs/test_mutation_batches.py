"""Regression tests for the batched-mutation / no-op version contract (PR 8).

The dynamic tier replays churn deltas against live graphs, so the version
counter must move *only* when the edge set actually changes: a no-op delta
(re-adding present edges, removing absent ones) must not invalidate the
cached CSR snapshot or the BFS distance cache, and a real batch must pay
exactly one invalidation, not one per edge.
"""

from __future__ import annotations

import pytest

from repro.graphs import Graph


def small_graph():
    return Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])


class TestNoOpMutations:
    def test_add_existing_edge_keeps_version(self):
        g = small_graph()
        version = g.version
        assert g.add_edge(0, 1) is False
        assert g.add_edge(1, 0) is False
        assert g.version == version

    def test_add_existing_edge_keeps_csr_and_distance_cache(self):
        g = small_graph()
        csr = g.csr()
        cache = g.distance_cache()
        before = list(cache.vector(0))
        g.add_edge(2, 1)
        assert g.csr() is csr
        assert g.distance_cache() is cache
        assert list(g.distance_cache().vector(0)) == before

    def test_remove_absent_edge_keeps_version_and_caches(self):
        g = small_graph()
        csr = g.csr()
        version = g.version
        assert g.remove_edge(0, 2) is False
        assert g.version == version
        assert g.csr() is csr

    def test_all_duplicate_add_batch_keeps_version(self):
        g = small_graph()
        csr = g.csr()
        version = g.version
        assert g.add_edges([(0, 1), (2, 1), (4, 5)]) == 0
        assert g.version == version
        assert g.csr() is csr

    def test_all_absent_remove_batch_keeps_version(self):
        g = small_graph()
        cache = g.distance_cache()
        version = g.version
        assert g.remove_edges([(0, 2), (1, 3), (2, 5)]) == 0
        assert g.version == version
        assert g.distance_cache() is cache


class TestBatchedRemoveEdges:
    def test_removes_present_edges_and_skips_absent(self):
        g = small_graph()
        assert g.remove_edges([(0, 1), (1, 0), (1, 3), (3, 2)]) == 2
        assert g.num_edges == 4
        assert not g.has_edge(0, 1)
        assert not g.has_edge(2, 3)
        assert g.has_edge(1, 2)

    def test_one_version_bump_per_batch(self):
        g = small_graph()
        version = g.version
        g.remove_edges([(0, 1), (1, 2), (2, 3)])
        assert g.version == version + 1

    def test_mirrors_add_edges_round_trip(self):
        g = small_graph()
        edges = [(0, 1), (2, 3)]
        g.remove_edges(edges)
        g.add_edges(edges)
        assert g == small_graph()

    def test_invalid_vertex_mid_batch_keeps_count_consistent(self):
        g = small_graph()
        with pytest.raises(ValueError):
            g.remove_edges([(0, 1), (0, 99)])
        # The valid prefix was removed and the bookkeeping kept in sync.
        assert not g.has_edge(0, 1)
        assert g.num_edges == len(g.edge_set()) == 5

    def test_batch_invalidates_snapshots_when_something_removed(self):
        g = small_graph()
        csr = g.csr()
        cache = g.distance_cache()
        g.remove_edges([(0, 1)])
        assert g.csr() is not csr
        assert g.distance_cache() is not cache
