"""Unit tests for exact / sampled distance computations."""

from __future__ import annotations

import pytest

from repro.graphs import (
    INFINITY,
    DistanceCache,
    Graph,
    all_pairs_distances,
    average_distance,
    cycle_graph,
    diameter,
    distance_histogram,
    eccentricity,
    grid_graph,
    pairwise_distance,
    path_graph,
    radius,
    sample_vertex_pairs,
    single_source_distances,
)


class TestSingleSource:
    def test_dense_vector(self):
        g = Graph(4, [(0, 1), (1, 2)])
        vec = single_source_distances(g, 0)
        # list() normalizes the backend-dependent container (list vs numpy
        # array); element values are identical on both kernel backends.
        assert list(vec) == [0.0, 1.0, 2.0, INFINITY]

    def test_pairwise_distance(self, cycle_8):
        assert pairwise_distance(cycle_8, 0, 4) == 4
        assert pairwise_distance(cycle_8, 0, 7) == 1

    def test_pairwise_disconnected(self):
        g = Graph(3, [(0, 1)])
        assert pairwise_distance(g, 0, 2) == INFINITY


class TestAllPairs:
    def test_matrix_symmetry(self, grid_5x5):
        matrix = all_pairs_distances(grid_5x5)
        for u in range(25):
            assert matrix[u][u] == 0
            for v in range(25):
                assert matrix[u][v] == matrix[v][u]

    def test_matrix_matches_manhattan_distance_on_grid(self):
        g = grid_graph(3, 3)
        matrix = all_pairs_distances(g)
        assert matrix[0][8] == 4
        assert matrix[0][2] == 2

    def test_triangle_inequality(self, small_random):
        matrix = all_pairs_distances(small_random)
        n = small_random.num_vertices
        for u in range(0, n, 7):
            for v in range(0, n, 5):
                for w in range(0, n, 11):
                    if matrix[u][v] != INFINITY and matrix[v][w] != INFINITY:
                        assert matrix[u][w] <= matrix[u][v] + matrix[v][w]


class TestGlobalMeasures:
    def test_path_diameter_and_radius(self):
        g = path_graph(7)
        assert diameter(g) == 6
        assert radius(g) == 3

    def test_cycle_eccentricity(self):
        g = cycle_graph(8)
        assert eccentricity(g, 0) == 4
        assert diameter(g) == 4

    def test_diameter_of_disconnected_graph_is_per_component(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        assert diameter(g) == 2

    def test_empty_graph_measures(self):
        assert diameter(Graph(0)) == 0
        assert radius(Graph(0)) == 0

    def test_average_distance_on_triangle(self, triangle):
        assert average_distance(triangle) == 1.0

    def test_average_distance_with_explicit_pairs(self, path_6):
        assert average_distance(path_6, pairs=[(0, 5), (0, 1)]) == 3.0


class TestSampling:
    def test_sampled_pairs_are_distinct_and_in_range(self):
        pairs = sample_vertex_pairs(30, 50, seed=1)
        assert len(pairs) == 50
        assert len(set(pairs)) == 50
        for u, v in pairs:
            assert 0 <= u < v < 30

    def test_sampling_is_deterministic(self):
        assert sample_vertex_pairs(50, 20, seed=3) == sample_vertex_pairs(50, 20, seed=3)
        assert sample_vertex_pairs(50, 20, seed=3) != sample_vertex_pairs(50, 20, seed=4)

    def test_sampling_caps_at_total_pairs(self):
        pairs = sample_vertex_pairs(4, 100, seed=0)
        assert len(pairs) == 6

    def test_sampling_degenerate_cases(self):
        assert sample_vertex_pairs(1, 10) == []
        assert sample_vertex_pairs(10, 0) == []

    def test_distance_histogram(self, path_6):
        histogram = distance_histogram(path_6)
        assert histogram[1] == 5
        assert histogram[5] == 1
        assert 0 not in histogram

    def test_sampling_dense_requests_stay_distinct(self):
        # Above a 50% fill ratio the sampler switches from rejection sampling
        # (which thrashes near saturation) to shuffling the pair space.
        max_pairs = 12 * 11 // 2
        for requested in (max_pairs, max_pairs - 1, max_pairs // 2 + 1):
            pairs = sample_vertex_pairs(12, requested, seed=5)
            assert len(pairs) == requested
            assert len(set(pairs)) == requested
            for u, v in pairs:
                assert 0 <= u < v < 12

    def test_dense_sampling_is_deterministic(self):
        assert sample_vertex_pairs(10, 44, seed=2) == sample_vertex_pairs(10, 44, seed=2)
        assert sample_vertex_pairs(10, 44, seed=2) != sample_vertex_pairs(10, 44, seed=3)

    def test_sampled_histogram_counts_unordered_pairs(self, path_6):
        # With k sampled sources on a connected n-vertex graph the histogram
        # must cover k*(k-1)/2 source-source pairs plus k*(n-k) source-other
        # pairs, each exactly once.
        histogram = distance_histogram(path_6, max_sources=3, seed=1)
        assert sum(histogram.values()) == 3 + 3 * 3
        assert 0 not in histogram

    def test_sampled_histogram_with_all_sources_matches_full(self, path_6):
        full = distance_histogram(path_6)
        sampled = distance_histogram(path_6, max_sources=6)
        assert sampled == full


class TestDistanceCache:
    def test_vectors_match_single_source(self, grid_5x5):
        cache = grid_5x5.distance_cache()
        for source in (0, 7, 24):
            assert list(cache.vector(source)) == list(
                single_source_distances(grid_5x5, source)
            )

    def test_vector_is_memoized(self, grid_5x5):
        cache = grid_5x5.distance_cache()
        assert cache.vector(3) is cache.vector(3)
        assert len(cache) == 1

    def test_shared_instance_per_graph(self, grid_5x5):
        assert grid_5x5.distance_cache() is grid_5x5.distance_cache()

    def test_mutation_invalidates_cached_vectors(self):
        graph = path_graph(6)
        cache = graph.distance_cache()
        assert cache.vector(0)[5] == 5.0
        graph.add_edge(0, 5)
        # The graph drops its cache reference on mutation...
        assert graph.distance_cache().vector(0)[5] == 1.0
        # ...and a stale handle self-heals via the version guard.
        assert cache.vector(0)[5] == 1.0

    def test_distance_helper(self, cycle_8):
        cache = DistanceCache(cycle_8)
        assert cache.distance(0, 4) == 4.0
        assert cache.distance(0, 7) == 1.0

    def test_clear_drops_vectors(self, grid_5x5):
        cache = grid_5x5.distance_cache()
        cache.vector(0)
        cache.clear()
        assert len(cache) == 0


class TestDistanceCacheLRU:
    """The opt-in entry cap (PR 9's serving tier); unbounded stays the default."""

    def test_unbounded_by_default(self, grid_5x5):
        cache = DistanceCache(grid_5x5)
        assert cache.max_entries is None
        for source in range(20):
            cache.vector(source)
        assert len(cache) == 20

    def test_cap_evicts_least_recently_used(self, grid_5x5):
        cache = DistanceCache(grid_5x5, max_entries=2)
        cache.vector(0)
        cache.vector(1)
        cache.vector(2)  # evicts 0
        assert 0 not in cache
        assert 1 in cache and 2 in cache
        assert len(cache) == 2

    def test_hit_refreshes_recency(self, grid_5x5):
        cache = DistanceCache(grid_5x5, max_entries=2)
        cache.vector(0)
        cache.vector(1)
        cache.vector(0)  # 1 is now the LRU entry
        cache.vector(2)  # evicts 1, not 0
        assert 0 in cache and 2 in cache
        assert 1 not in cache

    def test_capped_hits_still_memoize(self, grid_5x5):
        cache = DistanceCache(grid_5x5, max_entries=4)
        assert cache.vector(3) is cache.vector(3)

    def test_set_max_entries_trims_immediately(self, grid_5x5):
        cache = DistanceCache(grid_5x5)
        for source in range(5):
            cache.vector(source)
        cache.set_max_entries(2)
        assert len(cache) == 2
        # The two most recently inserted survive.
        assert 3 in cache and 4 in cache

    def test_uncapping_restores_unbounded_growth(self, grid_5x5):
        cache = DistanceCache(grid_5x5, max_entries=1)
        cache.set_max_entries(None)
        for source in range(6):
            cache.vector(source)
        assert len(cache) == 6

    def test_set_max_entries_validation(self, grid_5x5):
        cache = DistanceCache(grid_5x5)
        with pytest.raises(ValueError):
            cache.set_max_entries(0)
        with pytest.raises(ValueError):
            DistanceCache(grid_5x5, max_entries=-1)

    def test_contains_respects_mutation(self):
        graph = path_graph(6)
        cache = DistanceCache(graph, max_entries=8)
        cache.vector(0)
        assert 0 in cache
        graph.add_edge(0, 5)
        # Memoized but stale: the version guard makes it a miss.
        assert 0 not in cache
        assert cache.vector(0)[5] == 1.0
        assert 0 in cache

    def test_capped_vectors_match_uncapped(self, grid_5x5):
        capped = DistanceCache(grid_5x5, max_entries=3)
        plain = DistanceCache(grid_5x5)
        for source in range(10):
            assert list(capped.vector(source)) == list(plain.vector(source))
