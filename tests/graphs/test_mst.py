"""Canonical MST weights and the centralized Kruskal reference."""

from __future__ import annotations

import pytest

from repro.graphs import gnp_random_graph, grid_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.mst import (
    edge_order_key,
    edge_weight,
    kruskal_msf,
    msf_weight,
    total_weight,
)


def test_edge_weight_symmetric_and_bounded():
    for u, v in [(0, 1), (3, 17), (100, 2), (5, 5_000_000)]:
        w = edge_weight(u, v)
        assert w == edge_weight(v, u)
        assert 1 <= w <= 2**32


def test_edge_weight_deterministic():
    assert edge_weight(7, 12) == edge_weight(7, 12)


def test_edge_order_key_is_strict_total_order():
    graph = gnp_random_graph(30, 0.2, seed=5)
    keys = [edge_order_key(u, v) for u, v in graph.edges()]
    assert len(set(keys)) == len(keys), "order keys must be pairwise distinct"


def test_kruskal_on_path_takes_every_edge():
    graph = path_graph(10)
    msf = kruskal_msf(graph)
    assert sorted(msf) == sorted(graph.edges())


def test_kruskal_msf_size_and_acyclicity():
    graph = gnp_random_graph(40, 0.12, seed=2)
    msf = kruskal_msf(graph)
    forest = Graph(graph.num_vertices, msf)
    # |MSF| = n - (#components); the forest must preserve component structure.
    from repro.graphs import connected_components, same_component_structure

    assert len(msf) == graph.num_vertices - len(connected_components(graph))
    assert same_component_structure(graph, forest)


def test_kruskal_handles_disconnected_graph():
    left = [(0, 1), (1, 2), (0, 2)]
    right = [(3, 4), (4, 5), (3, 5)]
    graph = Graph(7, left + right)  # vertex 6 is isolated
    msf = kruskal_msf(graph)
    assert len(msf) == 4
    assert msf_weight(graph) == total_weight(msf)


def test_msf_weight_minimal_against_brute_force():
    """Kruskal's weight matches exhaustive search over spanning trees."""
    from itertools import combinations

    from repro.graphs import connected_components

    graph = gnp_random_graph(7, 0.5, seed=9)
    edges = graph.edges()
    n = graph.num_vertices
    num_components = len(connected_components(graph))
    tree_size = n - num_components
    best = None
    for subset in combinations(edges, tree_size):
        candidate = Graph(n, list(subset))
        if len(connected_components(candidate)) == num_components:
            weight = total_weight(subset)
            best = weight if best is None else min(best, weight)
    assert best is not None
    assert msf_weight(graph) == best


def test_empty_and_single_vertex():
    assert kruskal_msf(Graph(0, [])) == []
    assert kruskal_msf(Graph(1, [])) == []
    assert msf_weight(Graph(1, [])) == 0


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_distributed_boruvka_matches_kruskal(seed):
    """The CONGEST fragment protocol computes exactly the Kruskal MSF."""
    from repro.congest import Simulator
    from repro.primitives import run_boruvka_msf

    graph = gnp_random_graph(24, 0.15, seed=seed)
    outcome = run_boruvka_msf(Simulator(graph, strict_congestion=True))
    assert sorted(outcome.edges) == sorted(kruskal_msf(graph))


def test_distributed_boruvka_on_grid_and_disconnected():
    from repro.congest import Simulator
    from repro.primitives import run_boruvka_msf

    grid = grid_graph(4, 5)
    outcome = run_boruvka_msf(Simulator(grid, strict_congestion=True))
    assert sorted(outcome.edges) == sorted(kruskal_msf(grid))

    two = Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5)])
    outcome = run_boruvka_msf(Simulator(two, strict_congestion=True))
    assert sorted(outcome.edges) == sorted(kruskal_msf(two))
    # Fragment labels partition the graph into its two components.
    assert len({outcome.fragment[v] for v in range(3)}) == 1
    assert len({outcome.fragment[v] for v in range(3, 6)}) == 1
