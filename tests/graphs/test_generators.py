"""Unit tests for the graph generators / workload families."""

from __future__ import annotations

import pytest

from repro.graphs import (
    WORKLOAD_FAMILIES,
    balanced_tree,
    barbell_graph,
    caterpillar_graph,
    clustered_path_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    diameter,
    empty_graph,
    gnm_random_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    is_connected,
    lollipop_graph,
    make_workload,
    path_graph,
    planted_partition_graph,
    preferential_attachment_graph,
    random_connected_graph,
    random_regular_like_graph,
    random_tree,
    star_graph,
    torus_graph,
)
from repro.graphs.generators import add_random_perturbation, disjoint_union


class TestDeterministicFamilies:
    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_empty_graph(self):
        assert empty_graph(7).num_edges == 0

    def test_path_and_cycle(self):
        assert path_graph(10).num_edges == 9
        assert cycle_graph(10).num_edges == 10
        assert cycle_graph(2).num_edges == 1  # degrades to a path

    def test_star(self):
        g = star_graph(5)
        assert g.num_edges == 5
        assert g.degree(0) == 5

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.num_edges == 12
        assert g.degree(0) == 4
        assert g.degree(3) == 3

    def test_grid_dimensions(self):
        g = grid_graph(4, 6)
        assert g.num_vertices == 24
        assert g.num_edges == 4 * 5 + 6 * 3
        assert diameter(g) == 3 + 5

    def test_torus_is_regular(self):
        g = torus_graph(4, 4)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.num_vertices == 16
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert diameter(g) == 4

    def test_balanced_tree(self):
        g = balanced_tree(2, 3)
        assert g.num_vertices == 15
        assert g.num_edges == 14
        assert is_connected(g)

    def test_balanced_tree_rejects_zero_branching(self):
        with pytest.raises(ValueError):
            balanced_tree(0, 2)

    def test_caterpillar(self):
        g = caterpillar_graph(5, 2)
        assert g.num_vertices == 15
        assert g.num_edges == 4 + 10
        assert is_connected(g)

    def test_barbell(self):
        g = barbell_graph(4, 3)
        assert g.num_vertices == 11
        assert is_connected(g)
        assert diameter(g) == 1 + 4 + 1

    def test_lollipop(self):
        g = lollipop_graph(4, 5)
        assert g.num_vertices == 9
        assert is_connected(g)

    def test_clustered_path(self):
        g = clustered_path_graph(4, 5)
        assert g.num_vertices == 20
        assert is_connected(g)
        # diameter: within-cluster 1, plus 3 bridges plus intra hops
        assert diameter(g) >= 4


class TestRandomFamilies:
    def test_gnp_reproducible(self):
        assert gnp_random_graph(30, 0.2, seed=5) == gnp_random_graph(30, 0.2, seed=5)
        assert gnp_random_graph(30, 0.2, seed=5) != gnp_random_graph(30, 0.2, seed=6)

    def test_gnp_extreme_probabilities(self):
        assert gnp_random_graph(10, 0.0, seed=0).num_edges == 0
        assert gnp_random_graph(10, 1.0, seed=0).num_edges == 45

    def test_gnp_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            gnp_random_graph(10, 1.5)

    def test_gnm_exact_edge_count(self):
        g = gnm_random_graph(25, 60, seed=2)
        assert g.num_edges == 60

    def test_gnm_rejects_impossible_edge_count(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 10)

    def test_random_connected_is_connected(self):
        for seed in range(3):
            g = random_connected_graph(40, 30, seed=seed)
            assert is_connected(g)

    def test_random_tree_has_n_minus_1_edges(self):
        g = random_tree(25, seed=9)
        assert g.num_edges == 24
        assert is_connected(g)

    def test_regular_like_degree_bounded(self):
        g = random_regular_like_graph(30, 4, seed=1)
        assert g.max_degree() <= 4
        assert g.num_edges > 0

    def test_planted_partition_structure(self):
        g = planted_partition_graph(4, 10, 1.0, 0.0, seed=0)
        # p_intra=1, p_inter=0: four disjoint cliques
        assert g.num_edges == 4 * 45
        from repro.graphs import num_components

        assert num_components(g) == 4

    def test_preferential_attachment(self):
        g = preferential_attachment_graph(40, 2, seed=3)
        assert is_connected(g)
        assert g.num_edges >= 39

    def test_preferential_attachment_rejects_zero_m(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(10, 0)


class TestCombinators:
    def test_disjoint_union(self):
        g = disjoint_union([path_graph(3), cycle_graph(4)])
        assert g.num_vertices == 7
        assert g.num_edges == 2 + 4
        assert not g.has_edge(2, 3)

    def test_add_random_perturbation(self):
        base = path_graph(20)
        perturbed = add_random_perturbation(base, 5, seed=1)
        assert perturbed.num_edges == base.num_edges + 5
        assert base.is_subgraph_of(perturbed)


class TestWorkloadFactory:
    @pytest.mark.parametrize("family", WORKLOAD_FAMILIES)
    def test_every_family_builds(self, family):
        g = make_workload(family, 48, seed=3)
        assert g.num_vertices > 0
        # no self-loops / duplicates by construction
        assert all(u != v for u, v in g.edges())

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            make_workload("no-such-family", 10)

    def test_workload_respects_seed(self):
        assert make_workload("gnp", 40, seed=1) == make_workload("gnp", 40, seed=1)


class TestNewFamilies:
    def test_watts_strogatz_no_rewiring_is_ring_lattice(self):
        from repro.graphs import watts_strogatz_graph

        g = watts_strogatz_graph(20, nearest_neighbors=4, rewire_probability=0.0, seed=1)
        assert g.num_edges == 20 * 2  # k/2 = 2 edges per vertex
        assert is_connected(g)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_watts_strogatz_rewiring_is_seeded(self):
        from repro.graphs import watts_strogatz_graph

        a = watts_strogatz_graph(40, 4, 0.3, seed=7)
        b = watts_strogatz_graph(40, 4, 0.3, seed=7)
        c = watts_strogatz_graph(40, 4, 0.3, seed=8)
        assert a == b
        assert a != c

    def test_watts_strogatz_rejects_bad_probability(self):
        from repro.graphs import watts_strogatz_graph

        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 4, 1.5)

    def test_random_geometric_radius_monotone(self):
        from repro.graphs import random_geometric_graph

        sparse = random_geometric_graph(60, radius=0.1, seed=3)
        dense = random_geometric_graph(60, radius=0.3, seed=3)
        assert sparse.num_edges <= dense.num_edges
        assert sparse.is_subgraph_of(dense)

    def test_random_geometric_extreme_radii(self):
        from repro.graphs import random_geometric_graph

        assert random_geometric_graph(20, radius=0.0, seed=1).num_edges == 0
        assert random_geometric_graph(20, radius=2.0, seed=1).num_edges == 190

    def test_multi_component_is_disconnected(self):
        from repro.graphs import multi_component_graph, num_components

        g = multi_component_graph(4, 12, seed=5)
        assert num_components(g) == 4

    def test_multi_component_rejects_zero_components(self):
        from repro.graphs import multi_component_graph

        with pytest.raises(ValueError):
            multi_component_graph(0, 5)


class TestScaleTierFamilies:
    """The PR 5 large-n generators: O(n + m) batched construction."""

    def test_sparse_gnp_matches_dense_gnp_statistics(self):
        from repro.graphs import sparse_gnp_random_graph

        # Same distribution as gnp_random_graph (different stream): compare
        # the mean edge count over a few seeds against the expectation.
        n, p = 400, 0.02
        expected = p * n * (n - 1) / 2
        mean = sum(
            sparse_gnp_random_graph(n, p, seed=s).num_edges for s in range(8)
        ) / 8
        assert 0.8 * expected <= mean <= 1.2 * expected

    def test_sparse_gnp_is_seeded_and_validates(self):
        from repro.graphs import sparse_gnp_random_graph

        assert sparse_gnp_random_graph(200, 0.05, seed=4) == sparse_gnp_random_graph(
            200, 0.05, seed=4
        )
        assert sparse_gnp_random_graph(200, 0.05, seed=4) != sparse_gnp_random_graph(
            200, 0.05, seed=5
        )
        with pytest.raises(ValueError):
            sparse_gnp_random_graph(10, 1.5)

    def test_sparse_gnp_extremes(self):
        from repro.graphs import sparse_gnp_random_graph

        assert sparse_gnp_random_graph(30, 0.0, seed=1).num_edges == 0
        assert sparse_gnp_random_graph(30, 1.0, seed=1).num_edges == 435

    def test_powerlaw_cluster_edge_count_and_hubs(self):
        from repro.graphs import powerlaw_cluster_graph

        # Each arriving vertex v wires exactly min(m, v) edges.
        n, m = 300, 2
        g = powerlaw_cluster_graph(n, m, 0.3, seed=9)
        assert g.num_edges == sum(min(m, v) for v in range(1, n))
        # Preferential attachment concentrates degree far above the mean.
        assert g.max_degree() >= 5 * (2 * g.num_edges / n)

    def test_powerlaw_cluster_is_seeded_and_validates(self):
        from repro.graphs import powerlaw_cluster_graph

        assert powerlaw_cluster_graph(120, 2, 0.5, seed=2) == powerlaw_cluster_graph(
            120, 2, 0.5, seed=2
        )
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(10, 0)
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(10, 2, triangle_probability=1.5)

    def test_hyperbolic_like_is_connected_with_powerlaw_hubs(self):
        from repro.graphs import hyperbolic_like_graph, num_components

        g = hyperbolic_like_graph(500, avg_degree=6.0, gamma=2.5, seed=3)
        # The angular ring alone keeps the graph connected.
        assert num_components(g) == 1
        # Vertex 0 carries the largest weight: it must be a genuine hub.
        assert g.degree(0) >= 3 * (2 * g.num_edges / g.num_vertices)

    def test_hyperbolic_like_is_seeded_and_validates(self):
        from repro.graphs import hyperbolic_like_graph

        assert hyperbolic_like_graph(100, seed=6) == hyperbolic_like_graph(100, seed=6)
        assert hyperbolic_like_graph(100, seed=6) != hyperbolic_like_graph(100, seed=7)
        with pytest.raises(ValueError):
            hyperbolic_like_graph(10, avg_degree=-1.0)
        with pytest.raises(ValueError):
            hyperbolic_like_graph(10, gamma=2.0)

    def test_batched_grid_and_torus_shapes_unchanged(self):
        from repro.graphs import grid_graph, torus_graph

        grid = grid_graph(4, 5)
        assert grid.num_vertices == 20
        assert grid.num_edges == 4 * 4 + 3 * 5  # horizontal + vertical
        torus = torus_graph(4, 5)
        assert torus.num_edges == grid.num_edges + 4 + 5  # wrap edges
        assert grid.is_subgraph_of(torus)

    @pytest.mark.parametrize("family", ["sparse_gnp", "powerlaw", "hyperbolic"])
    def test_scale_tier_workloads_build_through_the_factory(self, family):
        g = make_workload(family, 256, seed=11)
        assert g.num_vertices == 256
        assert g.num_edges >= 256  # sparse but not degenerate
        assert g == make_workload(family, 256, seed=11)
