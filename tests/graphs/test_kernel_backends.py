"""Backend-equivalence property tests for the vectorized kernel tier (PR 7).

The pure-Python and NumPy/SciPy kernels must produce **identical values** --
not merely statistically equivalent ones -- because golden protocol counters
and spanner digests are diffed bit-for-bit across snapshots.  These tests pin
that contract on random workloads: every public kernel entry point (BFS
distances, distance vectors/histograms, cluster-table bulk queries, stretch
reports, the centralized exploration/trace-back pair, and a whole engine
build) is run under both backends and the results compared with plain ``==``.

Also covered here: the :mod:`repro.kernels` selector rules, the zero-copy
NumPy/SciPy CSR views and their invalidation through the ``Graph.version``
contract, and the :class:`DistanceCache` backend-switch behaviour.
"""

from __future__ import annotations

import pytest

import repro.kernels as kernels
from repro.analysis.stretch import empirical_additive_term, evaluate_stretch
from repro.core import build_spanner
from repro.experiments import default_parameters
from repro.core.cluster_table import (
    FlatClusters,
    flat_collections_partition_vertices,
)
from repro.core.parameters import StretchGuarantee
from repro.graphs import gnp_random_graph
from repro.graphs.bfs import bfs_distances
from repro.graphs.distances import distance_histogram, single_source_distances
from repro.primitives.exploration import centralized_engine_exploration
from repro.primitives.traceback import centralized_traceback_flat

pytestmark = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy/scipy not installed"
)

INF = float("inf")


@pytest.fixture()
def kernel(monkeypatch):
    """Switch kernel modes for one test; globals restored afterwards."""
    monkeypatch.setattr(kernels, "_requested", None)
    monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)

    def switch(mode):
        monkeypatch.setattr(kernels, "_requested", mode)

    return switch


def both_backends(kernel, fn):
    """Run ``fn`` under the pure-Python and the numpy kernel; return both."""
    kernel(kernels.KERNEL_PYTHON)
    python_result = fn()
    kernel(kernels.KERNEL_NUMPY)
    numpy_result = fn()
    return python_result, numpy_result


def workload(n, p, seed):
    return gnp_random_graph(n, p, seed=seed)


def voronoi_clusters(graph, centers):
    """Nearest-reachable-center partition (unreached vertices go singleton)."""
    dist = {c: bfs_distances(graph, c) for c in centers}
    vertex_center = {}
    for v in range(graph.num_vertices):
        best = min(
            ((dist[c].get(v, INF), c) for c in centers), key=lambda t: (t[0], t[1])
        )
        vertex_center[v] = best[1] if best[0] < INF else v
    return FlatClusters.from_center_map(graph.num_vertices, vertex_center)


# ----------------------------------------------------------------------
# BFS / distance kernels
# ----------------------------------------------------------------------
class TestBFSEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("max_depth", [None, 3])
    def test_bfs_distances_match(self, kernel, seed, max_depth):
        graph = workload(90, 0.03, seed)  # sparse enough to leave stragglers
        for source in (0, 7, 41):
            py, np_ = both_backends(
                kernel,
                lambda s=source: bfs_distances(graph, s, max_depth=max_depth),
            )
            assert py == np_

    @pytest.mark.parametrize("seed", [0, 3])
    def test_single_source_vectors_match(self, kernel, seed):
        graph = workload(70, 0.05, seed)
        for source in (0, 13, 69):
            py, np_ = both_backends(
                kernel, lambda s=source: list(single_source_distances(graph, s))
            )
            assert py == np_

    def test_distance_histogram_matches(self, kernel):
        graph = workload(60, 0.06, seed=4)
        py, np_ = both_backends(
            kernel, lambda: distance_histogram(graph, max_sources=20, seed=1)
        )
        assert py == np_


# ----------------------------------------------------------------------
# Cluster-table bulk queries
# ----------------------------------------------------------------------
class TestClusterEquivalence:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_bulk_queries_match(self, kernel, seed):
        graph = workload(80, 0.05, seed)
        snapshot = voronoi_clusters(graph, centers=[0, 11, 37, 62])

        def query():
            return {
                "vertex_to_center": snapshot.vertex_to_center(),
                "max_radius": snapshot.max_radius_in(graph),
                "radii": [h.radius_in(graph) for h in snapshot],
                "summary": snapshot.summary(),
                "partition": flat_collections_partition_vertices(
                    [snapshot], graph.num_vertices
                ),
            }

        py, np_ = both_backends(kernel, query)
        assert py == np_
        assert py["partition"] is True

    def test_partition_check_rejects_overlap_on_both_backends(self, kernel):
        n = 40
        full = FlatClusters.from_center_map(n, {v: 0 for v in range(n)})
        extra = FlatClusters.from_center_map(n, {0: 0})
        py, np_ = both_backends(
            kernel, lambda: flat_collections_partition_vertices([full, extra], n)
        )
        assert py is False and np_ is False


# ----------------------------------------------------------------------
# Stretch evaluation
# ----------------------------------------------------------------------
class TestStretchEquivalence:
    @pytest.mark.parametrize("seed", [1, 6])
    def test_reports_match_exactly(self, kernel, seed):
        graph = workload(70, 0.07, seed)
        spanner = build_spanner(
            graph, parameters=default_parameters(), engine="centralized"
        ).spanner
        # A deliberately unsatisfiable guarantee so violations are exercised.
        guarantee = StretchGuarantee(multiplicative=1.0, additive=0.0)

        def run():
            fresh = evaluate_stretch(graph, spanner, guarantee=guarantee)
            return {
                "checked": fresh.pairs_checked,
                "max_mult": fresh.max_multiplicative,
                "max_add": fresh.max_additive_surplus,
                "mean_mult": fresh.mean_multiplicative,
                "mean_add": fresh.mean_additive_surplus,
                "violations": fresh.violations,
                "disconnected": fresh.disconnected_mismatches,
                "surplus": fresh.surplus_by_distance,
            }

        py, np_ = both_backends(kernel, run)
        assert py == np_

    def test_empirical_additive_term_matches(self, kernel):
        graph = workload(60, 0.08, seed=2)
        spanner = build_spanner(
            graph, parameters=default_parameters(), engine="centralized"
        ).spanner
        py, np_ = both_backends(
            kernel, lambda: empirical_additive_term(graph, spanner, 1.0)
        )
        assert py == np_


# ----------------------------------------------------------------------
# Centralized exploration + trace-back
# ----------------------------------------------------------------------
class TestExplorationEquivalence:
    @pytest.mark.parametrize("depth", [2, 4])
    def test_exploration_and_traceback_match(self, kernel, depth):
        graph = workload(80, 0.06, seed=3)
        centers = [0, 9, 25, 44, 71]
        requests = {0: [25, 44], 9: [0], 44: [71]}

        def run():
            exploration = centralized_engine_exploration(
                graph, centers, depth=depth, cap=10
            )
            near = {c: list(v) for c, v in exploration.near_centers.items()}
            parents = {c: list(v) for c, v in exploration.parents.items()}
            reachable = {
                c: [t for t in targets if t in near[c]]
                for c, targets in requests.items()
            }
            edges = centralized_traceback_flat(exploration, reachable)
            return near, parents, sorted(edges)

        py, np_ = both_backends(kernel, run)
        assert py == np_
        # The trace-back edges feed JSON digests: no numpy scalars may leak.
        for edge in np_[2]:
            assert all(type(endpoint) is int for endpoint in edge)


class TestEngineEquivalence:
    def test_centralized_build_is_backend_independent(self, kernel):
        graph = workload(150, 0.04, seed=9)

        def run():
            result = build_spanner(
                graph, parameters=default_parameters(), engine="centralized"
            )
            return result.nominal_rounds, sorted(result.spanner.edge_set())

        py, np_ = both_backends(kernel, run)
        assert py == np_


# ----------------------------------------------------------------------
# CSR views and the Graph.version invalidation contract
# ----------------------------------------------------------------------
class TestCSRViews:
    def test_numpy_views_are_zero_copy_and_read_only(self):
        graph = workload(30, 0.2, seed=0)
        csr = graph.csr()
        indptr, adj = csr.indptr_np, csr.adj_np
        assert not indptr.flags.writeable and not adj.flags.writeable
        assert list(indptr) == list(csr.indptr)
        assert list(adj) == list(csr.adj)

    def test_scipy_handle_is_cached_per_snapshot(self):
        csr = workload(30, 0.2, seed=0).csr()
        assert csr.scipy_csr() is csr.scipy_csr()

    def test_graph_version_invalidates_the_scipy_view(self, kernel):
        kernel(kernels.KERNEL_NUMPY)
        graph = gnp_random_graph(20, 0.0, seed=0)
        graph.add_edges([(0, 1), (1, 2)])
        before = graph.csr()
        matrix = before.scipy_csr()
        assert matrix.nnz == 2 * graph.num_edges
        version = graph.version
        assert graph.add_edge(2, 3)
        assert graph.version > version
        after = graph.csr()
        assert after is not before
        fresh = after.scipy_csr()
        assert fresh is not matrix
        assert fresh.nnz == matrix.nnz + 2
        # The stale snapshot keeps its (frozen) pre-mutation view.
        assert matrix.nnz == 4


class TestDistanceCacheBackendSwitch:
    def test_vectors_are_invalidated_on_kernel_switch(self, kernel):
        graph = workload(25, 0.2, seed=1)
        cache = graph.distance_cache()
        kernel(kernels.KERNEL_PYTHON)
        python_vec = cache.vector(0)
        assert isinstance(python_vec, list)
        kernel(kernels.KERNEL_NUMPY)
        numpy_vec = cache.vector(0)
        assert not isinstance(numpy_vec, list)  # ndarray from the fresh sweep
        assert list(python_vec) == list(numpy_vec)
        # Memoized per backend: repeated reads return the same object.
        assert cache.vector(0) is numpy_vec


# ----------------------------------------------------------------------
# Selector rules
# ----------------------------------------------------------------------
class TestKernelSelector:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            kernels.set_kernel("fortran")

    def test_explicit_modes_override_size(self, kernel):
        kernel(kernels.KERNEL_PYTHON)
        assert kernels.active_backend(10**9) == "python"
        assert not kernels.use_numpy(10**9)
        kernel(kernels.KERNEL_NUMPY)
        assert kernels.active_backend(1) == "numpy"
        assert kernels.use_numpy(1)

    def test_auto_threshold(self, kernel):
        kernel(kernels.KERNEL_AUTO)
        assert kernels.active_backend(kernels.AUTO_MIN_VERTICES - 1) == "python"
        assert kernels.active_backend(kernels.AUTO_MIN_VERTICES) == "numpy"
        # The stamping resolution (num_vertices=None) is the large-n answer.
        assert kernels.active_backend() == "numpy"

    def test_env_var_resolution(self, kernel, monkeypatch):
        monkeypatch.setattr(kernels, "_requested", None)
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "python")
        assert kernels.kernel_mode() == "python"
        monkeypatch.setenv(kernels.KERNEL_ENV_VAR, "not-a-mode")
        assert kernels.kernel_mode() == kernels.KERNEL_AUTO

    def test_small_auto_workloads_never_import_numpy(self):
        # Backend selection (and a whole small-graph build, registry hints
        # included) must not pay the numpy+scipy import: selection uses a
        # find_spec probe, the real import happens at first vectorized use.
        import subprocess
        import sys
        from pathlib import Path

        code = (
            "import sys\n"
            "from repro.kernels import active_backend\n"
            "assert active_backend(100) == 'python'\n"
            "import repro\n"
            "from repro.graphs import gnp_random_graph\n"
            "result = repro.build('new-centralized', gnp_random_graph(40, 0.15, seed=1))\n"
            "assert result.spanner.num_edges > 0\n"
            "assert 'numpy' not in sys.modules, 'numpy imported on a small pure-Python workload'\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_set_kernel_mirrors_into_the_environment(self, kernel, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV_VAR, raising=False)
        import os

        kernels.set_kernel("numpy")
        try:
            assert os.environ[kernels.KERNEL_ENV_VAR] == "numpy"
            assert kernels.kernel_mode() == "numpy"
        finally:
            monkeypatch.setattr(kernels, "_requested", None)
