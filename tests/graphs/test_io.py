"""Unit tests for graph serialization."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    gnp_random_graph,
    graph_from_dict,
    graph_to_dict,
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)


def test_edge_list_round_trip(tmp_path):
    g = gnp_random_graph(25, 0.2, seed=8)
    path = tmp_path / "graph.txt"
    write_edge_list(g, path)
    assert read_edge_list(path) == g


def test_edge_list_of_empty_graph(tmp_path):
    g = Graph(4)
    path = tmp_path / "empty.txt"
    write_edge_list(g, path)
    loaded = read_edge_list(path)
    assert loaded.num_vertices == 4
    assert loaded.num_edges == 0


def test_edge_list_missing_header_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1\n1 2\n")
    with pytest.raises(ValueError):
        read_edge_list(path)


def test_edge_list_malformed_line_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("# repro-graph n=3 m=1\n0 1 2\n")
    with pytest.raises(ValueError):
        read_edge_list(path)


def test_dict_round_trip():
    g = Graph(5, [(0, 4), (1, 2)])
    assert graph_from_dict(graph_to_dict(g)) == g


def test_json_round_trip(tmp_path):
    g = gnp_random_graph(15, 0.3, seed=2)
    path = tmp_path / "graph.json"
    write_json(g, path)
    assert read_json(path) == g
