"""Tests for the optional networkx bridge (cross-validation of distances)."""

from __future__ import annotations

import pytest

networkx = pytest.importorskip("networkx")

from repro.graphs import all_pairs_distances, gnp_random_graph
from repro.graphs.nxbridge import from_networkx, to_networkx


def test_round_trip_preserves_structure():
    g = gnp_random_graph(20, 0.2, seed=6)
    assert from_networkx(to_networkx(g)) == g


def test_to_networkx_counts():
    g = gnp_random_graph(20, 0.2, seed=6)
    nx_graph = to_networkx(g)
    assert nx_graph.number_of_nodes() == g.num_vertices
    assert nx_graph.number_of_edges() == g.num_edges


def test_from_networkx_relabels_arbitrary_nodes():
    nx_graph = networkx.Graph()
    nx_graph.add_edge("alpha", "beta")
    nx_graph.add_edge("beta", "gamma")
    g = from_networkx(nx_graph)
    assert g.num_vertices == 3
    assert g.num_edges == 2


def test_from_networkx_drops_self_loops():
    nx_graph = networkx.Graph()
    nx_graph.add_edge(0, 0)
    nx_graph.add_edge(0, 1)
    g = from_networkx(nx_graph)
    assert g.num_edges == 1


def test_distances_agree_with_networkx():
    g = gnp_random_graph(30, 0.15, seed=9)
    ours = all_pairs_distances(g)
    theirs = dict(networkx.all_pairs_shortest_path_length(to_networkx(g)))
    for u in range(30):
        for v in range(30):
            if v in theirs.get(u, {}):
                assert ours[u][v] == theirs[u][v]
            else:
                assert ours[u][v] == float("inf")
