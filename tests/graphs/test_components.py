"""Unit tests for connected-component utilities."""

from __future__ import annotations

from repro.graphs import (
    Graph,
    component_labels,
    connected_components,
    is_connected,
    largest_component,
    num_components,
    same_component_structure,
)
from repro.graphs.components import component_sizes


def test_single_component(grid_5x5):
    assert is_connected(grid_5x5)
    assert num_components(grid_5x5) == 1
    assert connected_components(grid_5x5) == [list(range(25))]


def test_isolated_vertices_are_their_own_components(empty_graph_5):
    assert num_components(empty_graph_5) == 5
    assert not is_connected(empty_graph_5)


def test_trivial_graphs_count_as_connected():
    assert is_connected(Graph(0))
    assert is_connected(Graph(1))


def test_component_membership():
    g = Graph(6, [(0, 1), (1, 2), (3, 4)])
    components = connected_components(g)
    assert [0, 1, 2] in components
    assert [3, 4] in components
    assert [5] in components


def test_component_labels_consistent():
    g = Graph(6, [(0, 1), (1, 2), (3, 4)])
    labels = component_labels(g)
    assert labels[0] == labels[1] == labels[2]
    assert labels[3] == labels[4]
    assert labels[5] not in (labels[0], labels[3])


def test_largest_component():
    g = Graph(6, [(0, 1), (1, 2), (3, 4)])
    assert largest_component(g) == [0, 1, 2]


def test_component_sizes():
    g = Graph(6, [(0, 1), (1, 2), (3, 4)])
    assert sorted(component_sizes(g).values()) == [1, 2, 3]


def test_same_component_structure_for_spanning_tree(grid_5x5):
    from repro.graphs import bfs_tree_edges

    tree = grid_5x5.subgraph_from_edges(bfs_tree_edges(grid_5x5, 0))
    assert same_component_structure(grid_5x5, tree)


def test_component_structure_differs_when_an_isolated_bridge_is_dropped():
    g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    sub = g.subgraph_from_edges([(0, 1), (2, 3)])
    assert not same_component_structure(g, sub)


def test_component_structure_requires_same_vertex_count():
    assert not same_component_structure(Graph(3), Graph(4))
