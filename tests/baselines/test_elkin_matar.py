"""Tests for the deterministic linear-size-schedule spanner (Elkin-Matar)."""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_stretch
from repro.baselines import build_elkin_matar_spanner, elkin_matar_guarantee
from repro.baselines.elkin_matar import (
    sparse_degree_threshold,
    sparse_schedules,
    validate_sparse_parameters,
)
from repro.graphs import gnp_random_graph, grid_graph, same_component_structure


def test_schedules_shape_and_monotonicity():
    radii, deltas = sparse_schedules(0.5, 3)
    assert len(radii) == len(deltas) == 4
    assert radii[0] == 0
    for i in range(3):
        assert radii[i + 1] == deltas[i] + radii[i]
        assert deltas[i] >= 1


def test_degree_threshold_doubly_exponential():
    # ceil(n^(2^i / 2^levels)) for n = 256, levels = 3.
    assert sparse_degree_threshold(3, 0, 256) == 2
    assert sparse_degree_threshold(3, 1, 256) == 4
    assert sparse_degree_threshold(3, 2, 256) == 16
    assert sparse_degree_threshold(3, 3, 256) == 256
    assert sparse_degree_threshold(3, 0, 1) == 1


def test_parameter_validation():
    with pytest.raises(ValueError):
        validate_sparse_parameters(0.0, 3)
    with pytest.raises(ValueError):
        validate_sparse_parameters(1.5, 3)
    with pytest.raises(ValueError):
        validate_sparse_parameters(0.5, 0)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_stretch_guarantee_holds(seed):
    graph = gnp_random_graph(40, 0.1, seed=seed)
    result = build_elkin_matar_spanner(graph, epsilon=0.5, levels=3)
    assert result.guarantee == elkin_matar_guarantee(0.5, 3)
    stretch = evaluate_stretch(graph, result.spanner, guarantee=result.guarantee)
    assert stretch.satisfies_guarantee


def test_spanner_is_subgraph_preserving_components(community_graph):
    result = build_elkin_matar_spanner(community_graph)
    assert result.spanner.is_subgraph_of(community_graph)
    assert same_component_structure(community_graph, result.spanner)


def test_deterministic():
    graph = gnp_random_graph(36, 0.12, seed=7)
    a = build_elkin_matar_spanner(graph, epsilon=0.5, levels=2)
    b = build_elkin_matar_spanner(graph, epsilon=0.5, levels=2)
    assert a.spanner == b.spanner
    assert a.details == b.details


def test_phase_stats_and_rounds_reported():
    result = build_elkin_matar_spanner(grid_graph(6, 6), epsilon=0.5, levels=3)
    phases = result.details["phases"]
    assert len(phases) == 4  # levels + 1
    assert result.nominal_rounds is not None and result.nominal_rounds > 0
    assert all("num_hosts" in stats for stats in phases[:-1])
