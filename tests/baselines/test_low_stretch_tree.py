"""Tests for the star-decomposition low-average-stretch spanning tree."""

from __future__ import annotations

import pytest

from repro.analysis import measured_average_stretch
from repro.baselines import build_low_stretch_tree, declared_average_stretch_bound
from repro.graphs import (
    connected_components,
    gnp_random_graph,
    grid_graph,
    path_graph,
    same_component_structure,
)
from repro.graphs.graph import Graph


def _is_forest(graph: Graph) -> bool:
    return graph.num_edges == graph.num_vertices - len(connected_components(graph))


@pytest.mark.parametrize(
    "make",
    [
        lambda: path_graph(20),
        lambda: grid_graph(7, 7),
        lambda: gnp_random_graph(40, 0.12, seed=1),
        lambda: gnp_random_graph(50, 0.08, seed=4),
    ],
)
def test_output_is_spanning_forest(make):
    graph = make()
    result = build_low_stretch_tree(graph)
    assert result.spanner.is_subgraph_of(graph)
    assert same_component_structure(graph, result.spanner)
    assert _is_forest(result.spanner)


def test_average_stretch_within_declared_bound():
    graph = grid_graph(8, 8)
    result = build_low_stretch_tree(graph)
    bound = result.details["average_stretch_bound"]
    assert bound == declared_average_stretch_bound(graph.num_vertices)
    check = measured_average_stretch(graph, result.spanner)
    assert check.ok
    assert check.detail["average_stretch"] <= bound


def test_declared_bound_shape():
    assert declared_average_stretch_bound(1) == 1.0
    assert declared_average_stretch_bound(2) == 1.0
    # O(log^2 n): grows, but far below n for moderate sizes.
    assert declared_average_stretch_bound(1024) == 8.0 * 11.0**2
    assert declared_average_stretch_bound(1 << 20) < (1 << 20)


def test_disconnected_graph_gets_forest():
    graph = Graph(7, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    result = build_low_stretch_tree(graph)
    assert _is_forest(result.spanner)
    assert same_component_structure(graph, result.spanner)


def test_deterministic():
    graph = gnp_random_graph(36, 0.12, seed=9)
    a = build_low_stretch_tree(graph)
    b = build_low_stretch_tree(graph)
    assert a.spanner == b.spanner
    assert a.details == b.details


def test_decomposition_stats_recorded():
    # Large-diameter graph: the base case alone cannot cover it, so star
    # cuts must fire.
    graph = grid_graph(12, 12)
    result = build_low_stretch_tree(graph)
    assert result.details["star_cuts"] > 0
    assert result.details["portal_edges"] > 0
