"""Tests for the Baswana-Sen multiplicative spanner baseline."""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_stretch
from repro.baselines import build_baswana_sen_spanner
from repro.graphs import (
    Graph,
    complete_graph,
    gnp_random_graph,
    grid_graph,
    planted_partition_graph,
    same_component_structure,
)


@pytest.mark.parametrize("kappa", [1, 2, 3, 4])
@pytest.mark.parametrize("seed", [0, 1])
def test_multiplicative_stretch_guarantee(kappa, seed):
    graph = gnp_random_graph(45, 0.12, seed=seed + 10)
    result = build_baswana_sen_spanner(graph, kappa, seed=seed)
    stretch = evaluate_stretch(graph, result.spanner, guarantee=result.effective_guarantee())
    assert stretch.satisfies_guarantee
    assert stretch.max_multiplicative <= 2 * kappa - 1 + 1e-9


def test_spanner_is_subgraph(grid_5x5):
    result = build_baswana_sen_spanner(grid_5x5, 3, seed=2)
    assert result.spanner.is_subgraph_of(grid_5x5)


def test_connectivity_preserved():
    graph = planted_partition_graph(4, 8, 0.7, 0.05, seed=3)
    result = build_baswana_sen_spanner(graph, 3, seed=5)
    assert same_component_structure(graph, result.spanner)


def test_kappa_one_keeps_every_edge(small_random):
    result = build_baswana_sen_spanner(small_random, 1, seed=0)
    assert result.spanner == small_random


def test_dense_graph_is_sparsified():
    graph = complete_graph(40)
    result = build_baswana_sen_spanner(graph, 3, seed=1)
    assert result.num_edges < graph.num_edges


def test_empty_graph():
    result = build_baswana_sen_spanner(Graph(0), 3)
    assert result.num_edges == 0


def test_invalid_kappa_rejected(small_random):
    with pytest.raises(ValueError):
        build_baswana_sen_spanner(small_random, 0)


def test_result_metadata(small_random):
    result = build_baswana_sen_spanner(small_random, 3, seed=7)
    assert result.name == "baswana-sen"
    assert result.multiplicative_stretch == 5.0
    assert result.details["kappa"] == 3
    assert result.to_dict()["guarantee"]["additive"] == 0.0
