"""Tests for the Elkin'05-style sequential surrogate."""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_stretch
from repro.baselines import build_elkin05_surrogate_spanner
from repro.core import build_spanner
from repro.graphs import gnp_random_graph, planted_partition_graph, same_component_structure


def test_stretch_guarantee_holds(default_params):
    graph = gnp_random_graph(40, 0.12, seed=4)
    result = build_elkin05_surrogate_spanner(graph, default_params)
    stretch = evaluate_stretch(graph, result.spanner, guarantee=result.guarantee)
    assert stretch.satisfies_guarantee


def test_spanner_is_subgraph_and_connected(community_graph, default_params):
    result = build_elkin05_surrogate_spanner(community_graph, default_params)
    assert result.spanner.is_subgraph_of(community_graph)
    assert same_component_structure(community_graph, result.spanner)


def test_round_cost_grows_with_popular_count(default_params):
    """The surrogate charges |W_i| sequential scans -- more popular centers, more rounds."""
    sparse = gnp_random_graph(60, 0.03, seed=1)
    dense = gnp_random_graph(60, 0.4, seed=1)
    sparse_result = build_elkin05_surrogate_spanner(sparse, default_params)
    dense_result = build_elkin05_surrogate_spanner(dense, default_params)
    dense_popular = dense_result.details["phases"][0]["num_popular"]
    sparse_popular = sparse_result.details["phases"][0]["num_popular"]
    assert dense_popular > sparse_popular
    assert dense_result.nominal_rounds > 0


def test_sequential_selection_costs_more_than_ruling_set_on_dense_graphs(default_params):
    """The qualitative Table 1 gap: sequential scans pay ~|W_0| * delta rounds."""
    graph = gnp_random_graph(80, 0.3, seed=2)
    surrogate = build_elkin05_surrogate_spanner(graph, default_params)
    popular_phase0 = surrogate.details["phases"][0]["num_popular"]
    # Selection cost charged by the surrogate includes |W_0| * 2 * delta_0 rounds.
    assert popular_phase0 >= 0.5 * graph.num_vertices
    assert surrogate.nominal_rounds >= popular_phase0 * 2


def test_deterministic(default_params):
    graph = planted_partition_graph(4, 8, 0.6, 0.05, seed=9)
    a = build_elkin05_surrogate_spanner(graph, default_params)
    b = build_elkin05_surrogate_spanner(graph, default_params)
    assert a.spanner == b.spanner


def test_phase_stats_structure(community_graph, default_params):
    result = build_elkin05_surrogate_spanner(community_graph, default_params)
    phases = result.details["phases"]
    assert len(phases) == default_params.num_phases
    assert all("ruling_set_size" in phase for phase in phases)
