"""Tests for the randomized Elkin-Neiman-style baseline."""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_stretch
from repro.baselines import build_elkin_neiman_spanner
from repro.graphs import gnp_random_graph, grid_graph, planted_partition_graph, same_component_structure


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_stretch_guarantee_holds(seed, default_params):
    graph = gnp_random_graph(40, 0.1, seed=seed)
    result = build_elkin_neiman_spanner(graph, default_params, seed=seed)
    stretch = evaluate_stretch(graph, result.spanner, guarantee=result.guarantee)
    assert stretch.satisfies_guarantee


def test_spanner_is_subgraph(community_graph, default_params):
    result = build_elkin_neiman_spanner(community_graph, default_params, seed=3)
    assert result.spanner.is_subgraph_of(community_graph)


def test_connectivity_preserved(community_graph, default_params):
    result = build_elkin_neiman_spanner(community_graph, default_params, seed=4)
    assert same_component_structure(community_graph, result.spanner)


def test_reproducible_for_fixed_seed(default_params):
    graph = gnp_random_graph(30, 0.15, seed=8)
    a = build_elkin_neiman_spanner(graph, default_params, seed=11)
    b = build_elkin_neiman_spanner(graph, default_params, seed=11)
    assert a.spanner == b.spanner


def test_different_seeds_usually_differ(default_params):
    graph = planted_partition_graph(4, 8, 0.6, 0.05, seed=1)
    a = build_elkin_neiman_spanner(graph, default_params, seed=0)
    b = build_elkin_neiman_spanner(graph, default_params, seed=1)
    assert a.spanner != b.spanner or a.details != b.details


def test_round_cost_reported(default_params):
    graph = grid_graph(5, 5)
    result = build_elkin_neiman_spanner(graph, default_params, seed=0)
    assert result.nominal_rounds is not None and result.nominal_rounds > 0


def test_phase_stats_recorded(default_params):
    graph = gnp_random_graph(30, 0.1, seed=3)
    result = build_elkin_neiman_spanner(graph, default_params, seed=3)
    phases = result.details["phases"]
    assert len(phases) == default_params.num_phases
    assert phases[0]["num_clusters"] == 30
