"""Tests for the sampled very-sparse-schedule spanner (Elkin-Neiman style)."""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_stretch
from repro.baselines import (
    build_elkin_neiman_sparse_spanner,
    elkin_neiman_sparse_guarantee,
)
from repro.graphs import gnp_random_graph, planted_partition_graph, same_component_structure


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_stretch_guarantee_holds(seed):
    graph = gnp_random_graph(40, 0.1, seed=seed)
    result = build_elkin_neiman_sparse_spanner(graph, epsilon=0.5, levels=3, seed=seed)
    assert result.guarantee == elkin_neiman_sparse_guarantee(0.5, 3)
    stretch = evaluate_stretch(graph, result.spanner, guarantee=result.guarantee)
    assert stretch.satisfies_guarantee


def test_spanner_is_subgraph_preserving_components(community_graph):
    result = build_elkin_neiman_sparse_spanner(community_graph, seed=3)
    assert result.spanner.is_subgraph_of(community_graph)
    assert same_component_structure(community_graph, result.spanner)


def test_reproducible_for_fixed_seed():
    graph = gnp_random_graph(30, 0.15, seed=8)
    a = build_elkin_neiman_sparse_spanner(graph, seed=11)
    b = build_elkin_neiman_sparse_spanner(graph, seed=11)
    assert a.spanner == b.spanner


def test_different_seeds_usually_differ():
    graph = planted_partition_graph(4, 8, 0.6, 0.05, seed=1)
    a = build_elkin_neiman_sparse_spanner(graph, seed=0)
    b = build_elkin_neiman_sparse_spanner(graph, seed=1)
    assert a.spanner != b.spanner or a.details != b.details


def test_seed_recorded_in_details():
    graph = gnp_random_graph(24, 0.2, seed=2)
    result = build_elkin_neiman_sparse_spanner(graph, seed=5)
    assert result.details["seed"] == 5
    assert len(result.details["phases"]) == 4  # levels + 1
