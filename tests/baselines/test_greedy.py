"""Tests for the greedy multiplicative spanner baseline."""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_stretch
from repro.baselines import build_greedy_spanner
from repro.graphs import complete_graph, cycle_graph, gnp_random_graph, same_component_structure


@pytest.mark.parametrize("stretch", [1, 3, 5])
def test_stretch_guarantee(stretch):
    graph = gnp_random_graph(35, 0.15, seed=2)
    result = build_greedy_spanner(graph, stretch)
    report = evaluate_stretch(graph, result.spanner, guarantee=result.effective_guarantee())
    assert report.satisfies_guarantee


def test_stretch_one_keeps_all_edges(small_random):
    result = build_greedy_spanner(small_random, 1)
    assert result.spanner == small_random


def test_size_bound_for_stretch_3():
    """A greedy 3-spanner has girth > 4, hence at most ~n^{1.5} edges."""
    graph = complete_graph(30)
    result = build_greedy_spanner(graph, 3)
    assert result.num_edges <= 30 ** 1.5 + 30


def test_connectivity_preserved(community_graph):
    result = build_greedy_spanner(community_graph, 5)
    assert same_component_structure(community_graph, result.spanner)


def test_cycle_drops_no_edges_when_stretch_small():
    graph = cycle_graph(10)
    result = build_greedy_spanner(graph, 3)
    # removing any cycle edge forces a detour of length 9 > 3
    assert result.num_edges == 10


def test_cycle_drops_one_edge_when_stretch_huge():
    graph = cycle_graph(10)
    result = build_greedy_spanner(graph, 9)
    assert result.num_edges == 9


def test_invalid_stretch_rejected(small_random):
    with pytest.raises(ValueError):
        build_greedy_spanner(small_random, 0)


def test_deterministic(small_random):
    a = build_greedy_spanner(small_random, 5)
    b = build_greedy_spanner(small_random, 5)
    assert a.spanner == b.spanner
