"""Tests for the centralized Elkin-Peleg-style baseline."""

from __future__ import annotations

import pytest

from repro.analysis import evaluate_stretch
from repro.baselines import build_elkin_peleg_spanner
from repro.graphs import complete_graph, gnp_random_graph, same_component_structure


def test_stretch_guarantee_holds(default_params):
    graph = gnp_random_graph(40, 0.12, seed=6)
    result = build_elkin_peleg_spanner(graph, default_params)
    stretch = evaluate_stretch(graph, result.spanner, guarantee=result.guarantee)
    assert stretch.satisfies_guarantee


def test_spanner_is_subgraph(community_graph, default_params):
    result = build_elkin_peleg_spanner(community_graph, default_params)
    assert result.spanner.is_subgraph_of(community_graph)


def test_connectivity_preserved(community_graph, default_params):
    result = build_elkin_peleg_spanner(community_graph, default_params)
    assert same_component_structure(community_graph, result.spanner)


def test_deterministic(default_params):
    graph = gnp_random_graph(30, 0.15, seed=2)
    assert (
        build_elkin_peleg_spanner(graph, default_params).spanner
        == build_elkin_peleg_spanner(graph, default_params).spanner
    )


def test_dense_graph_sparsified(default_params):
    graph = complete_graph(30)
    result = build_elkin_peleg_spanner(graph, default_params)
    assert result.num_edges < graph.num_edges


def test_scan_counts_recorded(community_graph, default_params):
    result = build_elkin_peleg_spanner(community_graph, default_params)
    phases = result.details["phases"]
    assert len(phases) == default_params.num_phases
    assert all("scans" in phase for phase in phases)
    assert phases[0]["num_superclusters"] >= 1
